/**
 * @file
 * Unit tests for the intrusive waiter protocol (PortWaiter /
 * WaiterList) and the shared Forwarder retry loop: one-shot FIFO
 * wakeups, duplicate-park suppression, cancellation, and the
 * allocation-free guarantee on the steady-state backpressure path.
 */

#include <gtest/gtest.h>

#include "alloc_counter.hh"
#include "noc/forwarder.hh"
#include "noc/pipe_stage.hh"

namespace olight
{
namespace
{

/** Minimal credit-gated receiver with a waiter list. */
class ManualPort : public AcceptPort
{
  public:
    bool
    tryReserve(const Packet &) override
    {
        if (credits == 0)
            return false;
        --credits;
        return true;
    }

    void
    deliver(Packet, Tick) override { ++delivered; }

    void
    enqueueWaiter(const Packet &, PortWaiter &w) override
    {
        waiters.enqueue(w);
    }

    std::uint32_t
    release(std::uint32_t n)
    {
        credits += n;
        return waiters.wakeAll();
    }

    std::uint32_t credits = 0;
    std::uint64_t delivered = 0;
    WaiterList waiters;
};

struct RetryCounter
{
    int retries = 0;

    static void
    onRetry(void *self)
    {
        ++static_cast<RetryCounter *>(self)->retries;
    }
};

Packet
mkPkt(std::uint64_t id = 0)
{
    Packet pkt;
    pkt.id = id;
    return pkt;
}

TEST(Forwarder, ParksOnceAndWakesOnce)
{
    ManualPort port;
    RetryCounter counter;
    Forwarder<> fwd;
    fwd.bind(port, &RetryCounter::onRetry, &counter);

    EXPECT_FALSE(fwd.tryReserve(mkPkt()));
    EXPECT_TRUE(fwd.waiting());
    // A second failed attempt while parked must not double-park.
    EXPECT_FALSE(fwd.tryReserve(mkPkt()));
    EXPECT_EQ(port.release(1), 1u) << "exactly one waiter parked";
    EXPECT_EQ(counter.retries, 1);
    EXPECT_FALSE(fwd.waiting());
    EXPECT_EQ(fwd.wakeups(), 1u);

    // Nothing left parked: another release wakes nobody.
    EXPECT_EQ(port.release(1), 0u);
    EXPECT_EQ(counter.retries, 1);
}

TEST(Forwarder, SuccessfulReserveDoesNotPark)
{
    ManualPort port;
    port.credits = 2;
    RetryCounter counter;
    Forwarder<> fwd;
    fwd.bind(port, &RetryCounter::onRetry, &counter);

    EXPECT_TRUE(fwd.tryReserve(mkPkt()));
    EXPECT_FALSE(fwd.waiting());
    fwd.deliver(mkPkt(), 0);
    EXPECT_EQ(port.delivered, 1u);
    EXPECT_EQ(port.release(0), 0u);
}

TEST(Forwarder, MultipleSendersWakeFifo)
{
    ManualPort port;
    std::vector<int> order;
    struct Sender
    {
        std::vector<int> *order;
        int id;
        static void
        onRetry(void *self)
        {
            auto *s = static_cast<Sender *>(self);
            s->order->push_back(s->id);
        }
    };
    Sender s1{&order, 1}, s2{&order, 2}, s3{&order, 3};
    Forwarder<> f1, f2, f3;
    f1.bind(port, &Sender::onRetry, &s1);
    f2.bind(port, &Sender::onRetry, &s2);
    f3.bind(port, &Sender::onRetry, &s3);

    EXPECT_FALSE(f2.tryReserve(mkPkt()));
    EXPECT_FALSE(f1.tryReserve(mkPkt()));
    EXPECT_FALSE(f3.tryReserve(mkPkt()));
    EXPECT_EQ(port.release(3), 3u);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 3);
}

TEST(Forwarder, ReparkDuringWakeWaitsForNextRelease)
{
    ManualPort port;
    // Retry that consumes the fresh credit and immediately fails
    // again (credit granted, second reserve refused): the re-park
    // must land in the *next* wake batch, not loop in this one.
    struct Greedy
    {
        ManualPort *port;
        Forwarder<> *fwd;
        int retries = 0;
        static void
        onRetry(void *self)
        {
            auto *g = static_cast<Greedy *>(self);
            ++g->retries;
            if (g->fwd->tryReserve(mkPkt()))
                g->fwd->deliver(mkPkt(), 0);
            g->fwd->tryReserve(mkPkt()); // fails, re-parks
        }
    };
    Forwarder<> fwd;
    Greedy greedy{&port, &fwd};
    fwd.bind(port, &Greedy::onRetry, &greedy);

    EXPECT_FALSE(fwd.tryReserve(mkPkt()));
    EXPECT_EQ(port.release(1), 1u);
    EXPECT_EQ(greedy.retries, 1) << "no same-batch re-fire";
    EXPECT_TRUE(fwd.waiting());
    EXPECT_EQ(port.release(1), 1u);
    EXPECT_EQ(greedy.retries, 2);
}

TEST(Forwarder, DestructionCancelsParkedWaiter)
{
    ManualPort port;
    RetryCounter counter;
    {
        Forwarder<> fwd;
        fwd.bind(port, &RetryCounter::onRetry, &counter);
        EXPECT_FALSE(fwd.tryReserve(mkPkt()));
        EXPECT_FALSE(port.waiters.empty());
    }
    EXPECT_TRUE(port.waiters.empty())
        << "destroyed waiter must unlink itself";
    EXPECT_EQ(port.release(1), 0u);
    EXPECT_EQ(counter.retries, 0);
}

TEST(WaiterListDeath, DoubleEnqueuePanics)
{
    WaiterList a, b;
    RetryCounter counter;
    PortWaiter w(&RetryCounter::onRetry, &counter);
    a.enqueue(w);
    EXPECT_DEATH(b.enqueue(w), "already parked");
    a.wakeAll();
}

TEST(Forwarder, SteadyStateBackpressureAllocatesNothing)
{
    ManualPort port;
    RetryCounter counter;
    Forwarder<> fwd;
    fwd.bind(port, &RetryCounter::onRetry, &counter);

    // No gtest macros inside the counted region — count raw
    // outcomes and assert afterwards.
    std::uint64_t parked = 0, woken = 0, reserved = 0;
    std::uint64_t before = test_alloc::newCount();
    for (int i = 0; i < 100000; ++i) {
        parked += fwd.tryReserve(mkPkt()) ? 0 : 1; // parks
        woken += port.release(1);                  // wakes
        reserved += fwd.tryReserve(mkPkt()) ? 1 : 0;
    }
    EXPECT_EQ(test_alloc::newCount() - before, 0u)
        << "park/wake cycles must not allocate";
    EXPECT_EQ(parked, 100000u);
    EXPECT_EQ(woken, 100000u);
    EXPECT_EQ(reserved, 100000u);
    EXPECT_EQ(counter.retries, 100000);
}

/** End-to-end: a saturated capacity-1 stage chain in steady state
 *  (every hop stalling and waking) runs without a single heap
 *  allocation — the property the std::function subscribe() path
 *  could not provide. */
TEST(Forwarder, SaturatedPipeSteadyStateAllocatesNothing)
{
    EventQueue eq;
    StatSet stats;
    using S2 = PipeStage<ManualPort>;
    using S1 = PipeStage<S2>;
    PipeParams p;
    p.capacity = 1;

    ManualPort sink;
    S2 s2(eq, "s2", p, stats);
    S1 s1(eq, "s1", p, stats);
    s2.setDownstream(&sink);
    s1.setDownstream(&s2);

    std::uint64_t fed = 0;
    auto feed = [&] {
        Packet pkt = mkPkt(fed);
        if (s1.tryReserve(pkt)) {
            s1.deliver(std::move(pkt), eq.now());
            ++fed;
        }
    };
    auto drain = [&](std::uint64_t n) {
        // Trickle credits so the chain keeps stalling and waking.
        while (sink.delivered < n) {
            feed();
            sink.release(1);
            eq.run();
        }
    };

    drain(32); // warm-up: event-queue storage reaches steady depth

    std::uint64_t before = test_alloc::newCount();
    drain(96);
    EXPECT_EQ(test_alloc::newCount() - before, 0u)
        << "steady-state pipe movement must not allocate";
    EXPECT_EQ(sink.delivered, 96u);
}

} // namespace
} // namespace olight

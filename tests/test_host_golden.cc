/**
 * @file
 * Host-stream engine tests and golden-executor / kernel-builder
 * tests.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workloads/reference.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

TEST(HostStream, IssuesAllRequestsOnce)
{
    SystemConfig cfg;
    auto w = makeWorkload("Copy"); // two equal arrays
    w->build(cfg, 1ull << 15);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.setHostTraffic(w->hostTraffic());
    RunMetrics m = sys.run();

    // Two arrays of padded bytes, one 32 B request per block.
    std::uint64_t expect =
        2 * w->arrays()[0].bytes / 32;
    EXPECT_EQ(m.hostRequests, expect);
    EXPECT_TRUE(sys.hostStream().done());
    EXPECT_GT(sys.hostStream().finishTick(), 0u);
    EXPECT_LE(sys.hostStream().firstDoneTick(),
              sys.hostStream().finishTick());
}

TEST(HostStream, WindowBoundsLatency)
{
    // With a 1-deep window the stream serializes completely: the
    // total time is roughly requests * round-trip, far slower than
    // the deep-MLP default.
    auto finish = [](std::uint32_t window) {
        SystemConfig cfg;
        cfg.hostWindowPerChannel = window;
        auto w = makeWorkload("Scale");
        w->build(cfg, 1ull << 14);
        System sys(cfg);
        w->initMemory(sys.mem());
        sys.setHostTraffic(w->hostTraffic());
        sys.run();
        return sys.hostStream().finishTick();
    };
    Tick serial = finish(1);
    Tick parallel = finish(256);
    EXPECT_GT(serial, parallel * 20)
        << "MLP must dominate host streaming throughput";
}

TEST(HostStream, MeanLatencyIsAtLeastThePipeLatency)
{
    SystemConfig cfg;
    auto w = makeWorkload("Scale");
    w->build(cfg, 1ull << 14);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.setHostTraffic(w->hostTraffic());
    sys.run();
    // Forward wire latency alone is 220 core cycles.
    EXPECT_GT(sys.hostStream().meanLatencyCycles(), 220.0);
}

TEST(GoldenExecutor, MatchesMathReferenceForEveryWorkload)
{
    // The golden program-order execution and the independent
    // mathematical check() must agree with each other — this guards
    // against a shared-ALU bug hiding in both the simulator and the
    // golden run.
    SystemConfig cfg;
    for (const auto &name : workloadNames()) {
        auto w = makeWorkload(name);
        w->build(cfg, 1ull << 15);
        SparseMemory golden;
        w->initMemory(golden);
        runGolden(cfg, w->map(), w->streams(), golden);
        std::string why;
        EXPECT_TRUE(w->check(golden, why)) << name << ": " << why;
    }
}

TEST(GoldenExecutor, DetectsTamperedResults)
{
    SystemConfig cfg;
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 14);
    SparseMemory golden;
    w->initMemory(golden);
    runGolden(cfg, w->map(), w->streams(), golden);

    SparseMemory tampered = golden;
    const PimArray &out = w->arrays()[2];
    tampered.writeFloat(out.base + 4 * 1000,
                        golden.readFloat(out.base + 4 * 1000) +
                            1.0f);
    std::string why;
    EXPECT_FALSE(compareArray(tampered, golden, out, why));
    EXPECT_NE(why.find("out_c"), std::string::npos);
    EXPECT_FALSE(w->check(tampered, why));
}

TEST(KernelBuilder, BlockAddressesAreChannelLocal)
{
    SystemConfig cfg;
    AddressMap map(cfg);
    ArrayAllocator alloc(map);
    PimArray arr = alloc.alloc("x", 1ull << 16, 2);

    for (std::uint16_t ch : {0, 3, 15}) {
        KernelBuilder kb(map, ch);
        std::uint64_t blocks = kb.blocksPerChannel(arr);
        EXPECT_GT(blocks, 0u);
        for (std::uint64_t j : {std::uint64_t(0), blocks / 2,
                                blocks - 1}) {
            DramCoord c = map.decode(kb.blockAddr(arr, j));
            EXPECT_EQ(c.channel, ch);
            EXPECT_EQ(c.lane, 0);
        }
    }
}

TEST(KernelBuilder, EmittedInstructionsCarryGroupAndOperands)
{
    SystemConfig cfg;
    AddressMap map(cfg);
    ArrayAllocator alloc(map);
    PimArray arr = alloc.alloc("x", 1ull << 14, 3);

    KernelBuilder kb(map, 0);
    kb.load(1, arr, 0)
        .fetchOp(AluOp::Fma, 1, 1, arr, 1, 2.5f)
        .compute(AluOp::Relu, 1, 1, 3)
        .orderPoint(3)
        .store(1, arr, 2);
    auto stream = kb.take();
    ASSERT_EQ(stream.size(), 5u);
    EXPECT_EQ(stream[0].type, PimOpType::PimLoad);
    EXPECT_EQ(stream[0].memGroup, 3);
    EXPECT_EQ(stream[1].scalar, 2.5f);
    EXPECT_EQ(stream[2].type, PimOpType::PimCompute);
    EXPECT_EQ(stream[3].type, PimOpType::OrderPoint);
    EXPECT_EQ(stream[4].type, PimOpType::PimStore);
    EXPECT_EQ(kb.size(), 0u) << "take() must move the stream out";
}

TEST(KernelBuilder, ArraysNeverOverlap)
{
    SystemConfig cfg;
    AddressMap map(cfg);
    ArrayAllocator alloc(map);
    PimArray small = alloc.alloc("small", 16, 0);
    PimArray big = alloc.alloc("big", 1ull << 22, 0);
    PimArray next = alloc.alloc("next", 16, 0);
    EXPECT_GE(big.base, small.base + small.bytes);
    EXPECT_GE(next.base, big.base + big.bytes);
    EXPECT_EQ(small.base % map.bankGroupStride(), 0u);
    EXPECT_EQ(big.base % map.bankGroupStride(), 0u);
}

TEST(KernelBuilderDeath, OutOfRangeBlockPanics)
{
    SystemConfig cfg;
    AddressMap map(cfg);
    ArrayAllocator alloc(map);
    PimArray arr = alloc.alloc("x", 64, 0);
    KernelBuilder kb(map, 0);
    EXPECT_DEATH(kb.blockAddr(arr, 1u << 20), "out of range");
}

} // namespace
} // namespace olight

/**
 * @file
 * End-to-end smoke tests: every ordering mode runs the Add kernel to
 * completion on a small problem, OrderLight and Fence produce
 * bit-exact results, and OrderLight outperforms the fence baseline.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"

namespace olight
{
namespace
{

RunOptions
smallAdd(OrderingMode mode)
{
    RunOptions opts;
    opts.workload = "Add";
    opts.elements = 1ull << 17; // 512 KB per vector
    opts.mode = mode;
    opts.tsBytes = 256;
    opts.bmf = 16;
    return opts;
}

TEST(IntegrationSmoke, OrderLightAddIsCorrect)
{
    RunResult r = runWorkload(smallAdd(OrderingMode::OrderLight));
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.correct) << r.why;
    EXPECT_GT(r.metrics.pimCommands, 0u);
    EXPECT_GT(r.metrics.olPackets, 0u);
    EXPECT_EQ(r.metrics.fenceCount, 0u);
}

TEST(IntegrationSmoke, FenceAddIsCorrect)
{
    RunResult r = runWorkload(smallAdd(OrderingMode::Fence));
    EXPECT_TRUE(r.correct) << r.why;
    EXPECT_GT(r.metrics.fenceCount, 0u);
    EXPECT_EQ(r.metrics.olPackets, 0u);
    // Fences cost a full round trip; the paper reports 165-245
    // cycles per fence. Anything under ~50 would mean the stall is
    // not being modeled.
    EXPECT_GT(r.metrics.waitPerFence, 50.0);
}

TEST(IntegrationSmoke, OrderLightBeatsFence)
{
    RunResult ol = runWorkload(smallAdd(OrderingMode::OrderLight));
    RunResult fence = runWorkload(smallAdd(OrderingMode::Fence));
    ASSERT_TRUE(ol.correct) << ol.why;
    ASSERT_TRUE(fence.correct) << fence.why;
    EXPECT_LT(ol.metrics.execMs, fence.metrics.execMs);
    EXPECT_GT(ol.metrics.commandBwGCs, fence.metrics.commandBwGCs);
}

TEST(IntegrationSmoke, NoOrderingIsFastButIncorrect)
{
    RunOptions opts = smallAdd(OrderingMode::None);
    RunResult r = runWorkload(opts);
    // The "No Fence" bar of Figure 5: fastest, functionally wrong.
    EXPECT_FALSE(r.correct)
        << "reordering did not corrupt the result; the pipe "
           "reordering model is too weak";
    RunResult ol = runWorkload(smallAdd(OrderingMode::OrderLight));
    EXPECT_LE(r.metrics.execMs, ol.metrics.execMs * 1.05);
}

} // namespace
} // namespace olight

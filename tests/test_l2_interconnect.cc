/**
 * @file
 * Integration tests of the memory pipe: interconnect routing to L2
 * slices, slice-internal divergence/convergence, end-to-end latency,
 * and idle detection.
 */

#include <gtest/gtest.h>

#include "noc/interconnect.hh"

namespace olight
{
namespace
{

class CountingSink : public AcceptPort
{
  public:
    bool
    tryReserve(const Packet &) override
    {
        return true;
    }

    void
    deliver(Packet pkt, Tick when) override
    {
        arrivals.push_back({pkt, when});
    }

    void
    enqueueWaiter(const Packet &, PortWaiter &) override {}

    std::vector<std::pair<Packet, Tick>> arrivals;
};

struct PipeFixture : public ::testing::Test
{
    PipeFixture()
    {
        cfg.numChannels = 4;
        cfg.numSms = 2;
        for (std::uint16_t ch = 0; ch < cfg.numChannels; ++ch) {
            slices.push_back(std::make_unique<L2Slice>(cfg, ch, eq,
                                                       stats));
            slices.back()->setDownstream(&sinks[ch]);
        }
        std::vector<L2Slice *> ptrs;
        for (auto &s : slices)
            ptrs.push_back(s.get());
        icnt = std::make_unique<Interconnect>(cfg, eq,
                                              std::move(ptrs),
                                              stats);
    }

    void
    inject(std::uint32_t sm, std::uint16_t channel,
           std::uint64_t id, std::uint64_t addr = 0)
    {
        Packet pkt;
        pkt.id = id;
        pkt.smId = sm;
        pkt.channel = channel;
        pkt.instr.type = PimOpType::PimLoad;
        pkt.instr.addr = addr;
        ASSERT_TRUE(icnt->smPort(sm).tryReserve(pkt));
        icnt->smPort(sm).deliver(std::move(pkt), eq.now());
    }

    SystemConfig cfg;
    EventQueue eq;
    StatSet stats;
    CountingSink sinks[4];
    std::vector<std::unique_ptr<L2Slice>> slices;
    std::unique_ptr<Interconnect> icnt;
};

TEST_F(PipeFixture, RoutesByChannel)
{
    inject(0, 2, 1);
    inject(0, 0, 2);
    inject(1, 3, 3);
    eq.run();
    EXPECT_EQ(sinks[0].arrivals.size(), 1u);
    EXPECT_EQ(sinks[2].arrivals.size(), 1u);
    EXPECT_EQ(sinks[3].arrivals.size(), 1u);
    EXPECT_TRUE(sinks[1].arrivals.empty());
    EXPECT_TRUE(icnt->idle());
    for (auto &slice : slices)
        EXPECT_TRUE(slice->idle());
}

TEST_F(PipeFixture, EndToEndLatencyMatchesTableOne)
{
    inject(0, 0, 1);
    eq.run();
    ASSERT_EQ(sinks[0].arrivals.size(), 1u);
    // interconnect 120 + L2->DRAM 100 core cycles, plus a few
    // service slots and sub-partition jitter.
    Tick min_lat =
        Tick(cfg.interconnectLatency + cfg.l2ToDramLatency) *
        corePeriod;
    EXPECT_GE(sinks[0].arrivals[0].second, min_lat);
    EXPECT_LT(sinks[0].arrivals[0].second,
              min_lat + 40 * corePeriod);
}

TEST_F(PipeFixture, PerChannelOrderWithOrderLightMarkers)
{
    // Requests and a marker interleaved on one channel: everything
    // before the marker must come out before it, everything after
    // must follow it.
    for (std::uint64_t i = 0; i < 5; ++i)
        inject(0, 1, i, i * 32);
    Packet ol;
    ol.kind = PacketKind::OrderLight;
    ol.smId = 0;
    ol.channel = 1;
    ol.ol.channelId = 1;
    ASSERT_TRUE(icnt->smPort(0).tryReserve(ol));
    icnt->smPort(0).deliver(ol, eq.now());
    for (std::uint64_t i = 5; i < 10; ++i)
        inject(0, 1, i, i * 32);
    eq.run();

    ASSERT_EQ(sinks[1].arrivals.size(), 11u);
    std::size_t marker_pos = 99;
    for (std::size_t i = 0; i < sinks[1].arrivals.size(); ++i)
        if (sinks[1].arrivals[i].first.isOrderLight())
            marker_pos = i;
    ASSERT_NE(marker_pos, 99u);
    for (std::size_t i = 0; i < marker_pos; ++i)
        EXPECT_LT(sinks[1].arrivals[i].first.id, 5u);
    for (std::size_t i = marker_pos + 1;
         i < sinks[1].arrivals.size(); ++i)
        EXPECT_GE(sinks[1].arrivals[i].first.id, 5u);
}

TEST_F(PipeFixture, SubPartitionJitterReordersWithinPhase)
{
    // Without a marker, requests to different sub-partitions may
    // leave out of order — the pipe's raison d'être for OrderLight.
    // Inject in bursts bounded by the SM queue capacity.
    for (std::uint64_t burst = 0; burst < 4; ++burst) {
        for (std::uint64_t i = 0; i < 8; ++i) {
            std::uint64_t id = burst * 8 + i;
            inject(0, 0, id, id * 32); // alternating sub-partitions
        }
        eq.run();
    }
    ASSERT_EQ(sinks[0].arrivals.size(), 32u);
    bool inverted = false;
    for (std::size_t i = 1; i < sinks[0].arrivals.size(); ++i)
        inverted |= sinks[0].arrivals[i].first.id <
                    sinks[0].arrivals[i - 1].first.id;
    EXPECT_TRUE(inverted)
        << "the pipe should reorder unordered requests sometimes";
}

TEST_F(PipeFixture, SmPortsAreIndependent)
{
    // Saturate SM 0's queue; SM 1 must still accept.
    Packet pkt;
    pkt.channel = 0;
    pkt.instr.type = PimOpType::PimLoad;
    std::uint32_t accepted = 0;
    while (icnt->smPort(0).tryReserve(pkt) &&
           accepted < cfg.smQueueSize + 1) {
        icnt->smPort(0).deliver(pkt, eq.now());
        ++accepted;
    }
    EXPECT_EQ(accepted, cfg.smQueueSize);
    EXPECT_TRUE(icnt->smPort(1).tryReserve(pkt));
    icnt->smPort(1).deliver(pkt, eq.now());
    eq.run();
    EXPECT_EQ(sinks[0].arrivals.size(), accepted + 1);
}

} // namespace
} // namespace olight

/**
 * @file
 * Litmus-table sweep: every pattern x 32 schedule seeds x the three
 * interesting ordering modes. Two meta-assertions:
 *
 *  - sensitivity: under None each pattern must produce at least one
 *    oracle violation across the seed sweep — otherwise the pattern
 *    (or the oracle) is vacuous and proves nothing about Fence /
 *    OrderLight;
 *  - soundness: under Fence, OrderLight and Louvre no seed of any
 *    pattern may violate.
 *
 * Parameterized per pattern so ctest -j runs the sweeps in parallel.
 */

#include <gtest/gtest.h>

#include "verify/litmus.hh"

namespace olight
{
namespace
{

constexpr std::uint64_t kSeeds = 32;

std::vector<std::string>
patternNames()
{
    std::vector<std::string> names;
    for (const LitmusSpec &spec : litmusTable())
        names.push_back(spec.name);
    return names;
}

class LitmusSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LitmusSweep, NoneIsSensitive)
{
    std::uint64_t violating_seeds = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        LitmusResult r =
            runLitmus(GetParam(), OrderingMode::None, seed);
        EXPECT_GT(r.checks, 0u) << "seed " << seed;
        if (r.violations > 0)
            ++violating_seeds;
    }
    EXPECT_GT(violating_seeds, 0u)
        << GetParam() << " never violated under None across "
        << kSeeds << " seeds: the pattern exercises no reordering "
        << "the oracle can see";
}

TEST_P(LitmusSweep, FenceIsSound)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        LitmusResult r =
            runLitmus(GetParam(), OrderingMode::Fence, seed);
        EXPECT_GT(r.checks, 0u) << "seed " << seed;
        EXPECT_EQ(r.violations, 0u)
            << GetParam() << " seed " << seed << ":\n" << r.report;
    }
}

TEST_P(LitmusSweep, OrderLightIsSound)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        LitmusResult r =
            runLitmus(GetParam(), OrderingMode::OrderLight, seed);
        EXPECT_GT(r.checks, 0u) << "seed " << seed;
        EXPECT_EQ(r.violations, 0u)
            << GetParam() << " seed " << seed << ":\n" << r.report;
    }
}

TEST_P(LitmusSweep, LouvreIsSound)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        LitmusResult r =
            runLitmus(GetParam(), OrderingMode::Louvre, seed);
        EXPECT_GT(r.checks, 0u) << "seed " << seed;
        EXPECT_EQ(r.violations, 0u)
            << GetParam() << " seed " << seed << ":\n" << r.report;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table, LitmusSweep, ::testing::ValuesIn(patternNames()),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(LitmusTable, LookupAndConfig)
{
    EXPECT_GE(litmusTable().size(), 4u);
    for (const LitmusSpec &spec : litmusTable()) {
        EXPECT_EQ(findLitmus(spec.name), &spec);
        EXPECT_FALSE(std::string(spec.description).empty());
    }
    EXPECT_EQ(findLitmus("no-such-pattern"), nullptr);

    // Different seeds must perturb the schedule knobs (otherwise the
    // sweep explores one interleaving 32 times).
    SystemConfig a = litmusConfig(OrderingMode::OrderLight, 1);
    a.validate();
    bool differs = false;
    for (std::uint64_t seed = 2; seed <= 8 && !differs; ++seed) {
        SystemConfig b = litmusConfig(OrderingMode::OrderLight, seed);
        b.validate();
        differs = b.collectorJitter != a.collectorJitter ||
                  b.subPartJitter != a.subPartJitter ||
                  b.l2SubPartitions != a.l2SubPartitions ||
                  b.smQueueSize != a.smQueueSize ||
                  b.l2QueueSize != a.l2QueueSize;
    }
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace olight

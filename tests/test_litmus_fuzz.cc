/**
 * @file
 * Seeded litmus fuzz sweep (verify/litmus_fuzz.hh): a fixed corpus
 * of generated ordering programs, every case run under every
 * litmus-capable mode at --sim-jobs 1 and 4. Three meta-assertions:
 *
 *  - soundness: Fence / OrderLight / Louvre never violate on any
 *    generated case, at either worker count;
 *  - sensitivity: None violates on at least one case of the corpus
 *    (and on a healthy fraction — a corpus where reordering is
 *    nearly invisible would gate nothing);
 *  - determinism: per case and mode, the (violations, checks)
 *    verdict is identical for --sim-jobs 1 and 4.
 *
 * The corpus seed is fixed (kFuzzBase) so a failure names the exact
 * case seed to replay; runLitmusFuzz(seed, mode) reproduces it.
 */

#include <gtest/gtest.h>

#include "verify/litmus_fuzz.hh"

namespace olight
{
namespace
{

// 200 generated cases; each runs under 4 modes x {1,4} sim-jobs.
constexpr std::uint64_t kFuzzBase = 0x017f55ULL;
constexpr std::uint64_t kCases = 200;

std::uint64_t
caseSeed(std::uint64_t i)
{
    return kFuzzBase + i;
}

class FuzzSoundness
    : public ::testing::TestWithParam<OrderingMode>
{
};

TEST_P(FuzzSoundness, NoGeneratedCaseViolates)
{
    const OrderingMode mode = GetParam();
    for (std::uint64_t i = 0; i < kCases; ++i) {
        const std::uint64_t seed = caseSeed(i);
        FuzzCaseInfo info = fuzzCaseInfo(seed);
        LitmusResult j1 = runLitmusFuzz(seed, mode, 1);
        ASSERT_GT(j1.checks, 0u) << "case seed " << seed;
        EXPECT_EQ(j1.violations, 0u)
            << toString(mode) << " case seed " << seed << " ("
            << info.windows << " windows, " << info.instrs
            << " instrs, host=" << info.hostTraffic << "):\n"
            << j1.report;
        LitmusResult j4 = runLitmusFuzz(seed, mode, 4);
        EXPECT_EQ(j4.violations, j1.violations)
            << toString(mode) << " case seed " << seed
            << ": verdict depends on --sim-jobs";
        EXPECT_EQ(j4.checks, j1.checks)
            << toString(mode) << " case seed " << seed
            << ": check count depends on --sim-jobs";
    }
}

INSTANTIATE_TEST_SUITE_P(
    LitmusFuzz, FuzzSoundness,
    ::testing::Values(OrderingMode::Fence, OrderingMode::OrderLight,
                      OrderingMode::Louvre),
    [](const auto &info) { return toString(info.param); });

TEST(LitmusFuzz, NoneIsSensitiveAcrossCorpus)
{
    std::uint64_t violating = 0;
    for (std::uint64_t i = 0; i < kCases; ++i) {
        const std::uint64_t seed = caseSeed(i);
        LitmusResult j1 = runLitmusFuzz(seed, OrderingMode::None, 1);
        ASSERT_GT(j1.checks, 0u) << "case seed " << seed;
        if (j1.violations > 0)
            ++violating;
        LitmusResult j4 = runLitmusFuzz(seed, OrderingMode::None, 4);
        EXPECT_EQ(j4.violations, j1.violations)
            << "none case seed " << seed
            << ": verdict depends on --sim-jobs";
        EXPECT_EQ(j4.checks, j1.checks)
            << "none case seed " << seed
            << ": check count depends on --sim-jobs";
    }
    // The corpus must expose unenforced reordering, and not just on
    // a fluke case: require at least 5% of cases to violate.
    EXPECT_GE(violating, kCases / 20)
        << "only " << violating << "/" << kCases
        << " generated cases violate under None — the corpus "
        << "barely exercises reordering the oracle can see";
}

TEST(LitmusFuzz, GeneratorIsDeterministic)
{
    // Same seed -> same shape and same verdict, twice in a row.
    for (std::uint64_t i = 0; i < 8; ++i) {
        const std::uint64_t seed = caseSeed(i);
        FuzzCaseInfo a = fuzzCaseInfo(seed);
        FuzzCaseInfo b = fuzzCaseInfo(seed);
        EXPECT_EQ(a.windows, b.windows);
        EXPECT_EQ(a.instrs, b.instrs);
        EXPECT_EQ(a.hostTraffic, b.hostTraffic);
        LitmusResult r1 =
            runLitmusFuzz(seed, OrderingMode::Louvre, 1);
        LitmusResult r2 =
            runLitmusFuzz(seed, OrderingMode::Louvre, 1);
        EXPECT_EQ(r1.violations, r2.violations) << "seed " << seed;
        EXPECT_EQ(r1.checks, r2.checks) << "seed " << seed;
    }

    // Different seeds must produce different program shapes
    // somewhere in the corpus (a constant generator fuzzes nothing).
    FuzzCaseInfo first = fuzzCaseInfo(caseSeed(0));
    bool differs = false;
    for (std::uint64_t i = 1; i < 16 && !differs; ++i) {
        FuzzCaseInfo info = fuzzCaseInfo(caseSeed(i));
        differs = info.windows != first.windows ||
                  info.instrs != first.instrs ||
                  info.hostTraffic != first.hostTraffic;
    }
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace olight

/**
 * @file
 * Memory-controller tests: OrderLight enforcement at the scheduler,
 * acknowledgements, host completions, CGA host blocking, and the
 * packet-number sanity check.
 */

#include <gtest/gtest.h>

#include "dram/address_map.hh"
#include "dram/channel_timing.hh"
#include "dram/storage.hh"
#include "memctrl/memory_controller.hh"
#include "pim/pim_unit.hh"

namespace olight
{
namespace
{

struct McFixture : public ::testing::Test
{
    McFixture()
        : map(cfg),
          timing(cfg, "dram0", stats),
          pim(cfg, map, mem, 0, "pim0", stats),
          mc(cfg, map, 0, eq, timing, pim, "mc0", stats)
    {
        mc.setAckFn([this](const Packet &pkt) {
            acks.push_back(pkt.id);
        });
        mc.setHostDoneFn([this](const Packet &pkt) {
            hostDone.push_back(pkt.id);
        });
    }

    /** Channel-0 command address for block j of a synthetic array. */
    std::uint64_t
    addrFor(std::uint64_t j, std::uint64_t array = 0)
    {
        std::uint64_t local = array * map.bankGroupStride() /
                                  map.numChannels() +
                              map.laneZeroBlockLocal(j);
        return map.localToGlobal(local, 0);
    }

    void
    sendPim(std::uint64_t id, PimOpType type, std::uint64_t j,
            std::uint64_t array = 0, std::uint8_t group = 0)
    {
        Packet pkt;
        pkt.id = id;
        pkt.instr.type = type;
        pkt.instr.addr = addrFor(j, array);
        pkt.instr.memGroup = group;
        pkt.instr.dstSlot = 0;
        pkt.instr.srcSlot = 0;
        ASSERT_TRUE(mc.tryReserve(pkt));
        mc.deliver(std::move(pkt), eq.now());
    }

    void
    sendMarker(std::uint32_t number, std::uint8_t group = 0)
    {
        Packet pkt;
        pkt.kind = PacketKind::OrderLight;
        pkt.ol.channelId = 0;
        pkt.ol.memGroupId = group;
        pkt.ol.pktNumber = number;
        ASSERT_TRUE(mc.tryReserve(pkt));
        mc.deliver(std::move(pkt), eq.now());
    }

    SystemConfig cfg;
    EventQueue eq;
    StatSet stats;
    SparseMemory mem;
    AddressMap map;
    ChannelTiming timing;
    PimUnit pim;
    MemoryController mc;
    std::vector<std::uint64_t> acks;
    std::vector<std::uint64_t> hostDone;
};

TEST_F(McFixture, SchedulesAndAcksPimRequests)
{
    sendPim(1, PimOpType::PimLoad, 0);
    sendPim(2, PimOpType::PimLoad, 1);
    eq.run();
    EXPECT_EQ(acks.size(), 2u);
    EXPECT_EQ(pim.commandsExecuted(), 2u);
    EXPECT_TRUE(mc.idle());
}

TEST_F(McFixture, MarkerEnforcesOrderAcrossRowPreference)
{
    // Loads to row of array 0, marker, then a store back to the SAME
    // row (a row hit FR-FCFS would love to schedule first) plus
    // loads to a different row. The store must wait for the loads.
    sendPim(1, PimOpType::PimLoad, 0, /*array=*/1);
    sendPim(2, PimOpType::PimLoad, 0, /*array=*/2);
    sendMarker(0);
    sendPim(3, PimOpType::PimStore, 0, /*array=*/1);
    eq.run();
    ASSERT_EQ(acks.size(), 3u);
    EXPECT_EQ(acks[2], 3u) << "post-marker store scheduled last";
    EXPECT_EQ(stats.findScalar("mc0.olPackets")->value(), 1.0);
}

TEST_F(McFixture, DifferentGroupsAreNotConstrained)
{
    sendPim(1, PimOpType::PimLoad, 0, 1, /*group=*/0);
    sendMarker(0, /*group=*/0);
    sendPim(2, PimOpType::PimLoad, 0, 1, /*group=*/0);
    sendPim(3, PimOpType::PimLoad, 1, 1, /*group=*/1);
    eq.run();
    EXPECT_EQ(acks.size(), 3u);
    EXPECT_EQ(stats.findScalar("mc0.pimScheduled")->value(), 3.0);
}

TEST_F(McFixture, HostRequestsCompleteWithData)
{
    Packet pkt;
    pkt.id = 10;
    pkt.instr.type = PimOpType::HostLoad;
    pkt.instr.addr = addrFor(0);
    ASSERT_TRUE(mc.tryReserve(pkt));
    mc.deliver(pkt, eq.now());

    Packet st;
    st.id = 11;
    st.instr.type = PimOpType::HostStore;
    st.instr.addr = addrFor(1);
    ASSERT_TRUE(mc.tryReserve(st));
    mc.deliver(st, eq.now());

    eq.run();
    EXPECT_EQ(hostDone.size(), 2u);
    EXPECT_TRUE(acks.empty()) << "host requests are not PIM acks";
}

TEST_F(McFixture, CgaBlocksHostButNotPim)
{
    mc.setHostBlocked(true);
    Packet host;
    host.id = 20;
    host.instr.type = PimOpType::HostLoad;
    host.instr.addr = addrFor(0);
    ASSERT_TRUE(mc.tryReserve(host));
    mc.deliver(host, eq.now());
    sendPim(21, PimOpType::PimLoad, 1);
    eq.run();
    EXPECT_EQ(acks.size(), 1u);
    EXPECT_TRUE(hostDone.empty()) << "host blocked under CGA";
    EXPECT_FALSE(mc.idle());

    mc.setHostBlocked(false);
    eq.run();
    EXPECT_EQ(hostDone.size(), 1u);
    EXPECT_TRUE(mc.idle());
}

TEST_F(McFixture, ComputeCommandsScheduleWithoutAddresses)
{
    Packet pkt;
    pkt.id = 30;
    pkt.instr.type = PimOpType::PimCompute;
    pkt.instr.alu = AluOp::Zero;
    pkt.instr.memGroup = 0;
    ASSERT_TRUE(mc.tryReserve(pkt));
    mc.deliver(pkt, eq.now());
    eq.run();
    EXPECT_EQ(acks.size(), 1u);
    EXPECT_EQ(pim.commandsExecuted(), 1u);
}

TEST_F(McFixture, ReadQueueCapacityIsEnforced)
{
    Packet pkt;
    pkt.instr.type = PimOpType::PimLoad;
    pkt.instr.addr = addrFor(0);
    for (std::uint32_t i = 0; i < cfg.readQueueSize; ++i)
        ASSERT_TRUE(mc.tryReserve(pkt));
    EXPECT_FALSE(mc.tryReserve(pkt));
    // Writes have their own queue.
    Packet wr;
    wr.instr.type = PimOpType::PimStore;
    wr.instr.addr = addrFor(0);
    EXPECT_TRUE(mc.tryReserve(wr));
}

TEST_F(McFixture, FrfcfsPrefersRowHits)
{
    // Keep the command bus busy with row-0 hits so later arrivals
    // coexist in the queue (the scheduler paces itself with a small
    // lookahead window), then offer a row conflict and a row hit:
    // the younger hit is scheduled first.
    for (std::uint64_t j = 0; j < 16; ++j)
        sendPim(100 + j, PimOpType::PimLoad, j, 0);
    sendPim(2, PimOpType::PimLoad, 0, 1); // same bank, other row
    sendPim(3, PimOpType::PimLoad, 16, 0); // row hit on open row
    eq.run();
    ASSERT_EQ(acks.size(), 18u);
    EXPECT_EQ(acks[16], 3u) << "row hit bypasses the older miss";
    EXPECT_EQ(acks[17], 2u);
}

TEST_F(McFixture, MarkerDefeatsRowHitPreference)
{
    for (std::uint64_t j = 0; j < 16; ++j)
        sendPim(100 + j, PimOpType::PimLoad, j, 0);
    sendPim(2, PimOpType::PimLoad, 0, 1); // other row, pre-marker
    sendMarker(0);
    sendPim(3, PimOpType::PimLoad, 16, 0); // hit but post-marker
    eq.run();
    ASSERT_EQ(acks.size(), 18u);
    EXPECT_EQ(acks[16], 2u) << "ordering overrides row-hit first";
    EXPECT_EQ(acks[17], 3u);
}

TEST_F(McFixture, OutOfOrderMarkerNumberPanics)
{
    sendMarker(0);
    eq.run();
    EXPECT_DEATH(
        {
            sendMarker(5);
            eq.run();
        },
        "arrived out of order");
}

} // namespace
} // namespace olight

/** @file Coverage for metric printing, packet descriptions, and
 *  the logging front-end. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hh"
#include "core/pim_isa.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace olight
{
namespace
{

TEST(MetricsPrint, MentionsEveryHeadlineNumber)
{
    RunMetrics m;
    m.finishTick = Tick(1.2e6) * corePeriod;
    m.execMs = ticksToMs(m.finishTick);
    m.pimCommands = 1000;
    m.commandBwGCs = 2.5;
    m.dataBwGBs = 1234.5;
    m.stallCycles = 42;
    m.fenceCount = 7;
    m.waitPerFence = 250.0;

    std::ostringstream os;
    m.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("exec=1.000ms"), std::string::npos);
    EXPECT_NE(text.find("cmdBW=2.500GC/s"), std::string::npos);
    EXPECT_NE(text.find("dataBW=1234.5GB/s"), std::string::npos);
    EXPECT_NE(text.find("fences=7"), std::string::npos);
    EXPECT_NE(text.find("wait/fence=250.0"), std::string::npos);
    EXPECT_EQ(text.find("wait/OL"), std::string::npos)
        << "no OrderLight stats when none were issued";
}

TEST(CollectMetrics, DataBandwidthUsesConfiguredBusWidth)
{
    // Regression: dataBwGBs was computed with a hardcoded 32-byte
    // bus, so any config with a different busWidthBytes reported
    // wrong bandwidth. Fabricate the one stat the formula reads and
    // check the exact value for a non-32B bus.
    StatSet stats;
    stats.scalar("pim0.memCommands") += 1000;
    SystemConfig cfg;
    cfg.bmf = 16;
    cfg.busWidthBytes = 64;
    const Tick finish = Tick(1'000'000);
    const double seconds = ticksToSeconds(finish);

    RunMetrics wide = collectMetrics(stats, cfg, finish, 0);
    EXPECT_DOUBLE_EQ(wide.dataBwGBs,
                     1000.0 * 64.0 * 16.0 / seconds / 1e9);

    cfg.busWidthBytes = 32;
    RunMetrics narrow = collectMetrics(stats, cfg, finish, 0);
    EXPECT_DOUBLE_EQ(wide.dataBwGBs, 2.0 * narrow.dataBwGBs)
        << "doubling the bus width must double the data bandwidth";
}

TEST(PacketDescribe, RequestAndMarkerForms)
{
    Packet req;
    req.id = 77;
    req.channel = 3;
    req.instr = PimInstr::load(1, 0xabc0, 2);
    std::string r = req.describe();
    EXPECT_NE(r.find("PimLoad"), std::string::npos);
    EXPECT_NE(r.find("ch=3"), std::string::npos);
    EXPECT_NE(r.find("0xabc0"), std::string::npos);
    EXPECT_NE(r.find("grp=2"), std::string::npos);
    EXPECT_NE(r.find("id=77"), std::string::npos);

    Packet ol;
    ol.kind = PacketKind::OrderLight;
    ol.ol.channelId = 9;
    ol.ol.memGroupId = 1;
    ol.ol.pktNumber = 5;
    std::string o = ol.describe();
    EXPECT_NE(o.find("OL[ch=9"), std::string::npos);
    EXPECT_NE(o.find("#5"), std::string::npos);
}

TEST(Logging, InformRespectsVerbosity)
{
    // inform() writes to stdout only when verbose.
    testing::internal::CaptureStdout();
    setVerbose(false);
    inform("should not appear");
    setVerbose(true);
    inform("should appear ", 42);
    setVerbose(false);
    std::string out = testing::internal::GetCapturedStdout();
    EXPECT_EQ(out.find("should not appear"), std::string::npos);
    EXPECT_NE(out.find("should appear 42"), std::string::npos);
    EXPECT_FALSE(isVerbose());
}

TEST(Logging, WarnAlwaysEmits)
{
    testing::internal::CaptureStderr();
    warn("watch out: ", 3, " things");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: watch out: 3 things"),
              std::string::npos);
}

TEST(LoggingDeath, PanicAndFatalTerminate)
{
    EXPECT_DEATH(olight_panic("boom ", 1), "panic: boom 1");
    EXPECT_EXIT(olight_fatal("bad config"),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(ToStringCoverage, AllEnumsHaveNames)
{
    for (auto mode : {OrderingMode::None, OrderingMode::Fence,
                      OrderingMode::OrderLight,
                      OrderingMode::SeqNum})
        EXPECT_STRNE(toString(mode), "?");
    for (auto type :
         {PimOpType::PimLoad, PimOpType::PimStore,
          PimOpType::PimFetchOp, PimOpType::PimCompute,
          PimOpType::OrderPoint, PimOpType::HostLoad,
          PimOpType::HostStore})
        EXPECT_STRNE(toString(type), "?");
    for (auto op :
         {AluOp::Copy, AluOp::Add, AluOp::Sub, AluOp::Mul,
          AluOp::Fma, AluOp::FmaRev, AluOp::Affine, AluOp::Scale,
          AluOp::ScaleBias, AluOp::Relu, AluOp::DotAcc, AluOp::Dot,
          AluOp::SqDiffAcc, AluOp::SqDist, AluOp::PopcntAcc,
          AluOp::Popcnt, AluOp::BinCount, AluOp::MaxAcc,
          AluOp::MinAcc, AluOp::Threshold, AluOp::Zero})
        EXPECT_STRNE(toString(op), "?");
}

} // namespace
} // namespace olight

/**
 * @file
 * Central ordering-mode registry (core/config.hh): one table drives
 * every user-facing mode surface — CLI flag parsing, the serving
 * protocol, and the litmus harness's capable-mode set. These tests
 * pin (a) the registry's internal consistency and (b) that the
 * surfaces genuinely accept/reject the same strings, so adding a
 * backend in one place cannot silently leave a surface behind.
 */

#include <gtest/gtest.h>

#include <set>

#include "cli_common.hh"
#include "core/config.hh"
#include "serve/protocol.hh"

namespace olight
{
namespace
{

TEST(ModeRegistry, CoversEveryModeExactlyOnce)
{
    std::set<OrderingMode> modes;
    std::set<std::string> flags;
    for (const ModeInfo &info : modeRegistry()) {
        EXPECT_TRUE(modes.insert(info.mode).second)
            << info.flagName << " registered twice";
        EXPECT_TRUE(flags.insert(info.flagName).second)
            << info.flagName << " flag name collides";
        EXPECT_STREQ(modeFlagName(info.mode), info.flagName);
        EXPECT_STREQ(toString(info.mode), info.displayName);
    }
    // The five backends of this reproduction, louvre included.
    EXPECT_EQ(modeRegistry().size(), 5u);
    EXPECT_TRUE(modes.count(OrderingMode::Louvre));
}

TEST(ModeRegistry, LitmusModesAreTheCapableSubset)
{
    std::vector<OrderingMode> expected;
    for (const ModeInfo &info : modeRegistry())
        if (info.litmusCapable)
            expected.push_back(info.mode);
    EXPECT_EQ(litmusModes(), expected);
    // SeqNum has no litmus patterns; everything else does.
    for (const ModeInfo &info : modeRegistry())
        EXPECT_EQ(info.litmusCapable,
                  info.mode != OrderingMode::SeqNum)
            << info.flagName;
}

TEST(ModeRegistry, JoinedNamesFollowTheTable)
{
    EXPECT_EQ(modeNamesJoined(true, '|'),
              "none|fence|orderlight|seqnum|louvre");
    EXPECT_EQ(modeNamesJoined(false, '|'),
              "none|fence|orderlight|louvre");
    EXPECT_EQ(modeNamesJoined(true, ','),
              "none,fence,orderlight,seqnum,louvre");
}

/** The strings every surface is probed with. */
const std::vector<std::string> &
probeStrings()
{
    static const std::vector<std::string> probes = {
        "none",   "fence",  "orderlight", "seqnum", "louvre",
        "Louvre", "LOUVRE", "order",      "",       "versioned",
    };
    return probes;
}

TEST(ModeRegistry, CliAndCoreAgreeOnEveryProbe)
{
    for (const std::string &probe : probeStrings()) {
        OrderingMode viaCore, viaCli;
        bool core = modeFromName(probe, true, viaCore);
        bool cli = cli::tryParseMode(probe, true, viaCli);
        EXPECT_EQ(cli, core) << probe;
        if (core && cli) {
            EXPECT_EQ(viaCli, viaCore) << probe;
        }

        // The litmus surface (allowSeqnum = false) must reject
        // exactly seqnum on top of whatever core rejects.
        OrderingMode viaLitmus;
        bool litmus = cli::tryParseMode(probe, false, viaLitmus);
        EXPECT_EQ(litmus, core && probe != "seqnum") << probe;
    }
}

TEST(ModeRegistry, ServeProtocolAgreesOnEveryProbe)
{
    for (const std::string &probe : probeStrings()) {
        OrderingMode viaCore;
        bool core = modeFromName(probe, true, viaCore);

        serve::Request req;
        std::string err;
        bool serve = serve::parseRequest(
            R"({"cmd":"run","id":1,"workload":"Add",)"
            R"("elements":4096,"mode":")" + probe + R"("})",
            req, err);
        if (probe.empty()) {
            // Protocol semantic: the mode field is optional, and an
            // empty value means "use the default" — not a parse
            // error like it is on the CLI surfaces.
            EXPECT_TRUE(serve) << err;
            continue;
        }
        EXPECT_EQ(serve, core) << probe << " -> " << err;
        if (serve && core) {
            EXPECT_EQ(req.run.mode, viaCore) << probe;
        }
        if (!serve) {
            EXPECT_NE(err.find("mode"), std::string::npos)
                << probe << " -> " << err;
        }
    }
}

} // namespace
} // namespace olight

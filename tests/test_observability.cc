/**
 * @file
 * Tests for the observability layer: JSON stat export (golden
 * against the human dump), bucketed histograms, the O(1) StatSet
 * index, interval sampling (determinism across host worker counts,
 * no effect on simulated time), the Chrome trace_event backend
 * (balanced spans), and sweep JSON rows.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"
#include "sim/json.hh"
#include "sim/sampler.hh"
#include "sim/stats.hh"
#include "sim/thread_pool.hh"
#include "sim/trace.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

TEST(JsonNumber, RoundTripAndSpecials)
{
    auto fmt = [](double v) {
        std::ostringstream os;
        jsonNumber(os, v);
        return os.str();
    };
    // Integral values print as integers, not scientific notation.
    EXPECT_EQ(fmt(40.0), "40");
    EXPECT_EQ(fmt(0.0), "0");
    EXPECT_EQ(fmt(-3.0), "-3");
    EXPECT_EQ(fmt(1e12), "1000000000000");
    // Fractions round-trip through the shortest form.
    EXPECT_EQ(fmt(0.1), "0.1");
    EXPECT_EQ(fmt(2.5), "2.5");
    // nan/inf are invalid JSON tokens; null is emitted instead.
    EXPECT_EQ(fmt(std::nan("")), "null");
    EXPECT_EQ(fmt(1.0 / 0.0), "null");
}

TEST(JsonString, EscapesControlAndQuoteCharacters)
{
    std::ostringstream os;
    jsonString(os, "a\"b\\c\nd\x01");
    EXPECT_EQ(os.str(), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(StatsJson, GoldenDocumentMatchesRegisteredValues)
{
    StatSet stats;
    stats.scalar("a.count", "a counter") += 3;
    stats.scalar("b.value") += 2.5;
    Distribution &d =
        stats.distribution("lat", "latency", 0.0, 10.0, 2);
    d.sample(1.0);  // bucket 0
    d.sample(5.0);  // bucket 1
    d.sample(12.0); // overflow

    std::ostringstream js;
    stats.dumpJson(js);
    EXPECT_EQ(js.str(),
              "{\"scalars\":{\"a.count\":3,\"b.value\":2.5},"
              "\"distributions\":{\"lat\":{\"count\":3,\"sum\":18,"
              "\"mean\":6,\"min\":1,\"max\":12,"
              "\"buckets\":{\"lo\":0,\"hi\":10,\"counts\":[1,1],"
              "\"underflow\":0,\"overflow\":1}}}}");

    // The JSON carries the same values the human dump prints.
    std::ostringstream dump;
    stats.dump(dump);
    EXPECT_NE(dump.str().find("a.count"), std::string::npos);
    EXPECT_NE(dump.str().find("count=3 mean=6"), std::string::npos);
}

TEST(StatsJson, HistogramEdgesAndUnderflow)
{
    Distribution d("d", "");
    d.initBuckets(0.0, 8.0, 4);
    ASSERT_TRUE(d.hasBuckets());
    d.sample(-0.001); // underflow
    d.sample(0.0);    // first bucket, inclusive lower edge
    d.sample(1.999);  // still first bucket
    d.sample(2.0);    // second bucket
    d.sample(7.999);  // last bucket
    d.sample(8.0);    // exclusive upper edge -> overflow
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    ASSERT_EQ(d.bucketCounts().size(), 4u);
    EXPECT_EQ(d.bucketCounts()[0], 2u);
    EXPECT_EQ(d.bucketCounts()[1], 1u);
    EXPECT_EQ(d.bucketCounts()[2], 0u);
    EXPECT_EQ(d.bucketCounts()[3], 1u);

    // First registration wins: re-initializing is a no-op.
    d.initBuckets(0.0, 100.0, 50);
    EXPECT_EQ(d.bucketHi(), 8.0);
    ASSERT_EQ(d.bucketCounts().size(), 4u);

    // reset() zeroes the histogram but keeps its shape.
    d.reset();
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.bucketCounts()[0], 0u);
    EXPECT_TRUE(d.hasBuckets());
}

TEST(StatsIndex, LookupIsStableAcrossManyRegistrations)
{
    StatSet stats;
    Scalar &first = stats.scalar("ch0.requests");
    Distribution &fd = stats.distribution("ch0.latency");
    // A wide system registers thousands of stats; references handed
    // out early must survive (deque storage + hash index).
    for (int i = 1; i < 2000; ++i) {
        std::string ch = "ch" + std::to_string(i);
        stats.scalar(ch + ".requests");
        stats.distribution(ch + ".latency");
    }
    first += 7;
    fd.sample(3.0);
    EXPECT_EQ(&stats.scalar("ch0.requests"), &first)
        << "re-registration must return the original object";
    EXPECT_EQ(stats.findScalar("ch0.requests"), &first);
    EXPECT_EQ(stats.findScalar("ch0.requests")->value(), 7.0);
    EXPECT_EQ(stats.findDistribution("ch0.latency"), &fd);
    EXPECT_EQ(stats.findScalar("no.such.stat"), nullptr);
    EXPECT_EQ(stats.findDistribution("no.such.stat"), nullptr);
    EXPECT_EQ(stats.findScalar("ch1999.requests")->value(), 0.0);
}

/** Run one small PIM workload with sampling; return the CSV. */
std::string
sampledRun(Tick interval, std::uint64_t *samples = nullptr,
           Tick *finish = nullptr)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 12);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    std::ostringstream csv;
    sys.enableSampling(csv, interval);
    RunMetrics m = sys.run();
    if (samples)
        *samples = sys.sampler()->samples();
    if (finish)
        *finish = m.finishTick;
    return csv.str();
}

TEST(Sampler, TimeSeriesIsByteIdenticalForAnyWorkerCount)
{
    std::uint64_t samples = 0;
    Tick finish = 0;
    const Tick interval = Tick(500) * corePeriod;
    const std::string serial = sampledRun(interval, &samples, &finish);
    EXPECT_GT(samples, 0u);
    EXPECT_NE(serial.find("mc0.readq"), std::string::npos);
    EXPECT_NE(serial.find("dram0.rowHitRate"), std::string::npos);

    // Sampling is pure observation: simulated time is unchanged.
    Tick unsampled = 0;
    {
        SystemConfig cfg =
            configFor(OrderingMode::OrderLight, 256, 16);
        auto w = makeWorkload("Add");
        w->build(cfg, 1ull << 12);
        System sys(cfg);
        w->initMemory(sys.mem());
        sys.loadPimKernel(w->streams());
        unsampled = sys.run().finishTick;
    }
    EXPECT_EQ(finish, unsampled);

    // The acceptance check: concurrent Systems on a worker pool
    // produce the same bytes as the serial run, for any --jobs.
    for (unsigned jobs : {2u, 8u}) {
        std::vector<std::string> out(6);
        parallelFor(jobs, out.size(),
                    [&](std::size_t i) { out[i] = sampledRun(interval); });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], serial) << "jobs=" << jobs
                                      << " run=" << i;
    }
}

TEST(Sampler, RejectsZeroInterval)
{
    EventQueue eq;
    std::ostringstream os;
    EXPECT_EXIT((Sampler{eq, os, 0, {}}),
                ::testing::ExitedWithCode(1), "interval");
}

/** Count occurrences of a substring. */
std::size_t
countOf(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = text.find(needle);
         at != std::string::npos; at = text.find(needle, at + 1))
        ++n;
    return n;
}

TEST(ChromeTrace, EmitsBalancedSpansAndValidFrame)
{
    std::ostringstream json;
    {
        SystemConfig cfg =
            configFor(OrderingMode::OrderLight, 256, 16);
        auto w = makeWorkload("Copy");
        w->build(cfg, 1ull << 12);
        System sys(cfg);
        w->initMemory(sys.mem());
        sys.loadPimKernel(w->streams());
        sys.enableTrace(json, TraceFormat::ChromeJson);
        sys.run();
    } // System destruction closes the TraceWriter (JSON footer).

    const std::string text = json.str();
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\":", 0), 0u);
    EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 4), "\n]}\n");

    std::size_t begins = countOf(text, "\"ph\":\"B\"");
    std::size_t ends = countOf(text, "\"ph\":\"E\"");
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends) << "every span must be closed";

    // The packet lifecycle stages all appear.
    for (const char *stage :
         {"sm0.collect", "icnt.sm", "l2s0", "mc0.queue", "mc0.sched"})
        EXPECT_NE(text.find(stage), std::string::npos) << stage;
}

TEST(ChromeTrace, SpanWritesMatchedPairInOneCall)
{
    std::ostringstream os;
    {
        TraceWriter tw(os, TraceFormat::ChromeJson);
        tw.span(100, 300, "stage", 42, "detail");
        tw.record(400, "mc0", "arrive", "x");
        tw.close();
        tw.close(); // idempotent
    }
    const std::string text = os.str();
    EXPECT_EQ(countOf(text, "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOf(text, "\"ph\":\"E\""), 1u);
    EXPECT_EQ(countOf(text, "\"ph\":\"i\""), 1u);
    EXPECT_EQ(countOf(text, "\"tid\":42"), 2u);
    EXPECT_EQ(countOf(text, "]}\n"), 1u);
}

TEST(SweepJson, RowsCarryGridPointAndNestedMetrics)
{
    SweepRow row;
    row.workload = "Add";
    row.mode = OrderingMode::OrderLight;
    row.tsBytes = 256;
    row.bmf = 16;
    row.verified = true;
    row.correct = true;
    row.gpuMs = 1.5;
    row.metrics.execMs = 0.25;
    row.metrics.pimCommands = 1000;
    row.hostSeconds = 0.5;
    row.eventsExecuted = 1000;

    std::ostringstream plain, timed;
    writeJsonRows(plain, {row});
    writeJsonRows(timed, {row}, true);

    const std::string text = plain.str();
    EXPECT_EQ(text.rfind("[", 0), 0u);
    EXPECT_NE(text.find("\"workload\":\"Add\""), std::string::npos);
    EXPECT_NE(text.find("\"mode\":\"OrderLight\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ts_bytes\":256"), std::string::npos);
    EXPECT_NE(text.find("\"verified\":true"), std::string::npos);
    EXPECT_NE(text.find("\"gpu_ms\":1.5"), std::string::npos);
    EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
    EXPECT_NE(text.find("\"exec_ms\":0.25"), std::string::npos);
    EXPECT_NE(text.find("\"pim_commands\":1000"), std::string::npos);
    // Wall-clock fields are opt-in, like the CSV columns.
    EXPECT_EQ(text.find("host_seconds"), std::string::npos);
    EXPECT_NE(timed.str().find("\"host_seconds\":0.5"),
              std::string::npos);
    EXPECT_NE(timed.str().find("\"events_per_second\":2000"),
              std::string::npos);
}

} // namespace
} // namespace olight

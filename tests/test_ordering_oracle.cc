/**
 * @file
 * OrderingOracle unit tests: drive the observer hooks by hand — a
 * mock pipe — and inject every violation class the oracle claims to
 * catch, checking it fires with the right kind, packet, and stage.
 * Each clean counterpart is exercised too: an oracle is only
 * trustworthy if it stays silent on correct event streams.
 */

#include <gtest/gtest.h>

#include "verify/oracle.hh"

namespace olight
{
namespace
{

Packet
pimPkt(std::uint64_t id, const PimInstr &instr,
       std::uint16_t channel = 0, std::uint32_t warp = 0)
{
    Packet p;
    p.id = id;
    p.channel = channel;
    p.warpId = warp;
    p.instr = instr;
    return p;
}

Packet
olPkt(std::uint64_t id, std::uint8_t group, std::uint32_t number,
      std::uint16_t channel = 0)
{
    Packet p;
    p.kind = PacketKind::OrderLight;
    p.id = id;
    p.channel = channel;
    p.ol.channelId = std::uint8_t(channel);
    p.ol.memGroupId = group;
    p.ol.pktNumber = number;
    return p;
}

class OracleTest : public ::testing::Test
{
  protected:
    SystemConfig cfg_;
    OrderingOracle oracle_{cfg_};

    /** Issue + commit, in order, with no marker: always legal. */
    void
    commitNow(const Packet &pkt)
    {
        oracle_.onMcCommit(pkt.channel, pkt, 0);
    }
};

TEST_F(OracleTest, CleanRunStaysClean)
{
    Packet a = pimPkt(1, PimInstr::load(0, 0x0, 0));
    Packet b = pimPkt(2, PimInstr::store(0, 0x40, 0));
    oracle_.onWarpIssue(a);
    oracle_.onOrderPoint(0, 0, -1);
    oracle_.onWarpIssue(b);
    commitNow(a);
    commitNow(b);
    oracle_.onAck(a);
    oracle_.onAck(b);
    oracle_.finalize();
    EXPECT_TRUE(oracle_.clean());
    EXPECT_GT(oracle_.checksPerformed(), 0u);
}

TEST_F(OracleTest, CommitPastOrderingPointFires)
{
    Packet a = pimPkt(10, PimInstr::load(0, 0x0, 0));
    Packet b = pimPkt(11, PimInstr::load(1, 0x40, 0));
    oracle_.onWarpIssue(a);
    oracle_.onOrderPoint(0, 0, -1);
    oracle_.onWarpIssue(b);
    commitNow(b); // epoch-1 request commits before the epoch-0 one
    commitNow(a);

    ASSERT_EQ(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::CommitOrder);
    EXPECT_EQ(v.pktId, 11u);
    EXPECT_EQ(v.stage, "mc0.commit");
}

TEST_F(OracleTest, ReorderWithoutMarkerIsLegal)
{
    // The same commit reversal with no ordering point between the
    // issues: both are epoch 0 and any order is allowed.
    Packet a = pimPkt(10, PimInstr::load(0, 0x0, 0));
    Packet b = pimPkt(11, PimInstr::load(1, 0x40, 0));
    oracle_.onWarpIssue(a);
    oracle_.onWarpIssue(b);
    commitNow(b);
    commitNow(a);
    EXPECT_TRUE(oracle_.clean());
}

TEST_F(OracleTest, IndependentGroupsAreNotOrdered)
{
    // A single-group marker orders only its group: group 1 may
    // commit around it freely.
    Packet a = pimPkt(20, PimInstr::load(0, 0x0, 1));
    Packet b = pimPkt(21, PimInstr::load(1, 0x40, 1));
    oracle_.onWarpIssue(a);
    oracle_.onOrderPoint(0, 0, -1); // group 0, not group 1
    oracle_.onWarpIssue(b);
    commitNow(b);
    commitNow(a);
    EXPECT_TRUE(oracle_.clean());
}

TEST_F(OracleTest, DualOrderPointOrdersBothGroups)
{
    Packet a = pimPkt(30, PimInstr::store(0, 0x0, 0));  // group 0
    Packet b = pimPkt(31, PimInstr::store(1, 0x40, 1)); // group 1
    oracle_.onWarpIssue(a);
    oracle_.onWarpIssue(b);
    oracle_.onOrderPoint(0, 0, 1); // dual: orders 0 and 1 together
    Packet c = pimPkt(32, PimInstr::load(2, 0x80, 0));
    oracle_.onWarpIssue(c);

    // a commits, so group 0 itself is fine — but group 1 still has
    // b outstanding below the marker when c commits.
    commitNow(a);
    commitNow(c);

    ASSERT_EQ(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::CrossGroupOrder);
    EXPECT_EQ(v.pktId, 32u);

    commitNow(b);
    oracle_.finalize();
    EXPECT_EQ(oracle_.violationCount(), 1u); // nothing new
}

TEST_F(OracleTest, OlPacketsOutOfNumberOrderFire)
{
    Packet m0 = olPkt(40, 0, 0);
    Packet m1 = olPkt(41, 0, 1);
    oracle_.onOlInject(m0);
    oracle_.onOlInject(m1);
    oracle_.onMcOrderLight(0, m1); // #1 arrives before #0
    oracle_.onMcOrderLight(0, m0);

    ASSERT_GE(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::OlSequence);
    EXPECT_EQ(v.pktId, 41u);
    EXPECT_EQ(v.stage, "mc0.ol");
}

TEST_F(OracleTest, DroppedMergeCopyFires)
{
    Packet m = olPkt(50, 0, 0);
    oracle_.onOlInject(m);
    oracle_.onOlReplicate("l2s0.dv", m, 2);
    oracle_.onOlMergeIn("l2s0.cv", 0, m);
    oracle_.onOlMergeOut("l2s0.cv", m, 1); // one copy went missing

    ASSERT_EQ(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::Conservation);
    EXPECT_EQ(v.pktId, 50u);
    EXPECT_EQ(v.stage, "l2s0.cv");
}

TEST_F(OracleTest, DuplicatedMergeCopyFires)
{
    Packet m = olPkt(51, 0, 0);
    oracle_.onOlInject(m);
    oracle_.onOlReplicate("l2s0.dv", m, 2);
    oracle_.onOlMergeIn("l2s0.cv", 0, m);
    oracle_.onOlMergeIn("l2s0.cv", 1, m);
    oracle_.onOlMergeOut("l2s0.cv", m, 2);
    EXPECT_TRUE(oracle_.clean()); // exact merge is fine

    oracle_.onOlMergeIn("l2s0.cv", 1, m); // straggler duplicate
    ASSERT_GE(oracle_.violationCount(), 1u);
    EXPECT_EQ(oracle_.violations()[0].kind,
              ViolationKind::Conservation);
}

TEST_F(OracleTest, NeverMergedCaughtAtFinalize)
{
    Packet m = olPkt(52, 0, 0);
    oracle_.onOlInject(m);
    oracle_.onOlReplicate("l2s0.dv", m, 4);
    oracle_.onOlMergeIn("l2s0.cv", 0, m);
    oracle_.onOlMergeIn("l2s0.cv", 1, m);
    // Two of four copies vanish; the merge never completes. The
    // report names the divergence point that created the copies.
    oracle_.finalize();

    bool found = false;
    for (const Violation &v : oracle_.violations())
        if (v.kind == ViolationKind::Conservation &&
            v.pktId == 52u && v.stage == "l2s0.dv")
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(OracleTest, MixedMergeCopiesFire)
{
    // Copies of two different markers interleave at one convergence
    // point: the FSM would assemble a packet from mixed halves.
    Packet m0 = olPkt(60, 0, 0);
    Packet m1 = olPkt(61, 1, 0);
    oracle_.onOlInject(m0);
    oracle_.onOlInject(m1);
    oracle_.onOlReplicate("l2s0.dv", m0, 2);
    oracle_.onOlReplicate("l2s0.dv", m1, 2);
    oracle_.onOlMergeIn("l2s0.cv", 0, m0);
    oracle_.onOlMergeIn("l2s0.cv", 1, m1); // m0 still assembling

    ASSERT_GE(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::CrossGroupMerge);
    EXPECT_EQ(v.pktId, 61u);
    EXPECT_EQ(v.stage, "l2s0.cv");
}

TEST_F(OracleTest, TsRawHazardFires)
{
    // writer loads TS slot 3; an ordering point separates the reader
    // that stores from slot 3 — committing the reader first means
    // the PIM ALU read a slot its ordered producer never filled.
    Packet writer = pimPkt(70, PimInstr::load(3, 0x0, 0));
    Packet reader = pimPkt(71, PimInstr::store(3, 0x40, 0));
    oracle_.onWarpIssue(writer);
    oracle_.onOrderPoint(0, 0, -1);
    oracle_.onWarpIssue(reader);
    commitNow(reader);
    commitNow(writer);

    bool found = false;
    for (const Violation &v : oracle_.violations())
        if (v.kind == ViolationKind::TsRaw && v.pktId == 71u &&
            v.stage == "pim0.exec")
            found = true;
    EXPECT_TRUE(found);
}

TEST_F(OracleTest, TsRawToleratesUnorderedSlotReuse)
{
    // Same slot reuse with no marker in between: no ordered
    // dependence, any commit order is allowed.
    Packet writer = pimPkt(72, PimInstr::load(3, 0x0, 0));
    Packet reader = pimPkt(73, PimInstr::store(3, 0x40, 0));
    oracle_.onWarpIssue(writer);
    oracle_.onWarpIssue(reader);
    commitNow(reader);
    commitNow(writer);
    EXPECT_TRUE(oracle_.clean());
}

TEST_F(OracleTest, PhantomAckFires)
{
    Packet a = pimPkt(80, PimInstr::load(0, 0x0, 0), 0, 5);
    oracle_.onWarpIssue(a);
    oracle_.onAck(a); // ack before any commit

    ASSERT_EQ(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::AckConservation);
    EXPECT_EQ(v.stage, "sm0.ack");
}

TEST_F(OracleTest, LostRequestCaughtAtFinalize)
{
    Packet a = pimPkt(90, PimInstr::load(0, 0x0, 0));
    oracle_.onWarpIssue(a);
    oracle_.finalize(); // never committed

    ASSERT_EQ(oracle_.violationCount(), 1u);
    const Violation &v = oracle_.violations()[0];
    EXPECT_EQ(v.kind, ViolationKind::Conservation);
    EXPECT_EQ(v.pktId, 90u);
}

TEST_F(OracleTest, ViolationReportCarriesHistory)
{
    Packet a = pimPkt(100, PimInstr::load(0, 0x0, 0));
    Packet b = pimPkt(101, PimInstr::load(1, 0x40, 0));
    oracle_.onWarpIssue(a);
    oracle_.onOrderPoint(0, 0, -1);
    oracle_.onWarpIssue(b);
    oracle_.onCollectorInject(b, 10, 14);
    oracle_.onStageEgress("icnt.sm0", b, 14, 31);
    oracle_.onMcAdmit(0, b);
    commitNow(b);

    ASSERT_EQ(oracle_.violationCount(), 1u);
    const std::string &msg = oracle_.violations()[0].message;
    EXPECT_NE(msg.find("sm0.collect"), std::string::npos) << msg;
    EXPECT_NE(msg.find("icnt.sm0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mc0.admit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[10..14]"), std::string::npos) << msg;
}

TEST_F(OracleTest, ViolationStorageIsCappedButCounted)
{
    // 100 epoch-skipping commits: all counted, only 64 stored.
    oracle_.onOrderPoint(0, 0, -1);
    for (std::uint64_t i = 0; i < 100; ++i) {
        Packet late = pimPkt(200 + i, PimInstr::load(0, 0x0, 0));
        oracle_.onWarpIssue(pimPkt(500 + i,
                                   PimInstr::load(1, 0x40, 0)));
        oracle_.onOrderPoint(0, 0, -1);
        oracle_.onWarpIssue(late);
        commitNow(late);
    }
    EXPECT_GE(oracle_.violationCount(), 100u);
    EXPECT_EQ(oracle_.violations().size(), 64u);
}

} // namespace
} // namespace olight

/**
 * @file
 * Tests for the memory-controller ordering tracker, validated
 * against the paper's flag/counter description (Section 5.3.2):
 * "the counter associated with a memory-group is incremented when a
 * request ... is dequeued ... and decremented when it is scheduled.
 * When the scheduler receives an OrderLight packet, the flag ... is
 * set. Any subsequent request to that memory-group is not scheduled
 * until the flag is unset. The flag is unset when the counter ...
 * is decremented to zero."
 */

#include <gtest/gtest.h>

#include "memctrl/ordering_tracker.hh"

namespace olight
{
namespace
{

TEST(OrderingTracker, NoMarkersMeansAlwaysEligible)
{
    OrderingTracker t(4);
    auto e0 = t.onRequestArrive(0);
    auto e1 = t.onRequestArrive(0);
    EXPECT_TRUE(t.eligible(0, e0));
    EXPECT_TRUE(t.eligible(0, e1));
    EXPECT_FALSE(t.flagSet(0));
}

TEST(OrderingTracker, FlagBlocksLaterEpochUntilDrained)
{
    OrderingTracker t(4);
    auto a = t.onRequestArrive(0);
    auto b = t.onRequestArrive(0);
    t.onOrderLightArrive(0);
    auto c = t.onRequestArrive(0);

    EXPECT_TRUE(t.flagSet(0));
    EXPECT_EQ(t.pendingCount(0), 3u);
    EXPECT_TRUE(t.eligible(0, a));
    EXPECT_TRUE(t.eligible(0, b));
    EXPECT_FALSE(t.eligible(0, c));

    t.onScheduled(0, a);
    EXPECT_TRUE(t.flagSet(0)) << "one pre-marker request remains";
    EXPECT_FALSE(t.eligible(0, c));

    t.onScheduled(0, b);
    EXPECT_FALSE(t.flagSet(0)) << "counter reached zero: flag unset";
    EXPECT_TRUE(t.eligible(0, c));
}

TEST(OrderingTracker, GroupsAreIndependent)
{
    OrderingTracker t(4);
    auto a = t.onRequestArrive(0);
    t.onOrderLightArrive(0);
    auto b = t.onRequestArrive(0);
    auto other = t.onRequestArrive(1);

    EXPECT_FALSE(t.eligible(0, b));
    EXPECT_TRUE(t.eligible(1, other))
        << "requests of other memory-groups must not be constrained";
    t.onScheduled(0, a);
    EXPECT_TRUE(t.eligible(0, b));
}

TEST(OrderingTracker, MultipleInFlightMarkers)
{
    OrderingTracker t(2);
    auto e0 = t.onRequestArrive(0);
    t.onOrderLightArrive(0);
    auto e1 = t.onRequestArrive(0);
    t.onOrderLightArrive(0);
    auto e2 = t.onRequestArrive(0);

    EXPECT_TRUE(t.eligible(0, e0));
    EXPECT_FALSE(t.eligible(0, e1));
    EXPECT_FALSE(t.eligible(0, e2));

    t.onScheduled(0, e0);
    EXPECT_TRUE(t.eligible(0, e1));
    EXPECT_FALSE(t.eligible(0, e2));

    t.onScheduled(0, e1);
    EXPECT_TRUE(t.eligible(0, e2));
}

TEST(OrderingTracker, MarkerWithNoPriorRequestsIsFree)
{
    OrderingTracker t(2);
    t.onOrderLightArrive(0);
    auto e = t.onRequestArrive(0);
    EXPECT_FALSE(t.flagSet(0));
    EXPECT_TRUE(t.eligible(0, e));
}

TEST(OrderingTracker, EpochsWithinSamePhaseMayReorder)
{
    // Requests of the same epoch carry no mutual constraint — the
    // FR-FCFS scheduler may pick row hits among them freely.
    OrderingTracker t(2);
    auto a = t.onRequestArrive(0);
    auto b = t.onRequestArrive(0);
    t.onScheduled(0, b); // schedule the *younger* one first
    EXPECT_TRUE(t.eligible(0, a));
    t.onScheduled(0, a);
    EXPECT_EQ(t.pendingCount(0), 0u);
}

TEST(OrderingTrackerDeath, SchedulingUntrackedRequestPanics)
{
    OrderingTracker t(2);
    EXPECT_DEATH(t.onScheduled(0, 0), "untracked");
}

} // namespace
} // namespace olight

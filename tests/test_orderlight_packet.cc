/** @file Unit tests for the OrderLight packet wire format (Fig 8). */

#include <gtest/gtest.h>

#include "core/orderlight_packet.hh"

namespace olight
{
namespace
{

TEST(OrderLightPacket, RoundTripBasic)
{
    OrderLightPacket pkt;
    pkt.channelId = 11;
    pkt.memGroupId = 5;
    pkt.pktNumber = 0xdeadbeef;

    std::uint64_t wire = encodeOrderLight(pkt);
    EXPECT_EQ(wirePacketId(wire), PacketId::OrderLight);

    OrderLightPacket out;
    ASSERT_TRUE(decodeOrderLight(wire, out));
    EXPECT_EQ(out, pkt);
}

TEST(OrderLightPacket, RoundTripAllFieldValues)
{
    for (std::uint8_t ch = 0; ch < 16; ++ch) {
        for (std::uint8_t grp = 0; grp < 16; ++grp) {
            OrderLightPacket pkt;
            pkt.channelId = ch;
            pkt.memGroupId = grp;
            pkt.pktNumber = 0x01020304u * ch + grp;
            OrderLightPacket out;
            ASSERT_TRUE(decodeOrderLight(encodeOrderLight(pkt), out));
            EXPECT_EQ(out, pkt);
        }
    }
}

TEST(OrderLightPacket, ExtendedSecondGroup)
{
    OrderLightPacket pkt;
    pkt.channelId = 3;
    pkt.memGroupId = 1;
    pkt.memGroupId2 = 9;
    pkt.hasSecondGroup = true;
    pkt.pktNumber = 42;

    std::uint64_t wire = encodeOrderLight(pkt);
    EXPECT_EQ(wirePacketId(wire), PacketId::Extended);
    OrderLightPacket out;
    ASSERT_TRUE(decodeOrderLight(wire, out));
    EXPECT_EQ(out, pkt);
}

TEST(OrderLightPacket, LoadStoreWordsAreNotOrderLight)
{
    // Packet-id values 0 (load) and 1 (store) must be rejected.
    OrderLightPacket out;
    EXPECT_FALSE(decodeOrderLight(0x0, out));
    std::uint64_t store_wire = std::uint64_t(1) << 44;
    EXPECT_EQ(wirePacketId(store_wire), PacketId::Store);
    EXPECT_FALSE(decodeOrderLight(store_wire, out));
}

TEST(OrderLightPacket, FieldsDoNotOverlap)
{
    OrderLightPacket a;
    a.channelId = 15;
    OrderLightPacket b;
    b.memGroupId = 15;
    OrderLightPacket c;
    c.pktNumber = 0xffffffffu;
    std::uint64_t wa = encodeOrderLight(a);
    std::uint64_t wb = encodeOrderLight(b);
    std::uint64_t wc = encodeOrderLight(c);
    // Clearing the packet-id bits, the remaining payloads must be
    // disjoint across fields.
    std::uint64_t id_mask = std::uint64_t(0x3) << 44;
    EXPECT_EQ((wa & ~id_mask) & (wb & ~id_mask), 0u);
    EXPECT_EQ((wa & ~id_mask) & (wc & ~id_mask), 0u);
    EXPECT_EQ((wb & ~id_mask) & (wc & ~id_mask), 0u);
}

TEST(OrderLightPacketDeath, OutOfRangeFieldsPanic)
{
    OrderLightPacket pkt;
    pkt.channelId = 16; // only 4 bits
    EXPECT_DEATH(encodeOrderLight(pkt), "channel id out of range");
    pkt.channelId = 0;
    pkt.memGroupId = 16;
    EXPECT_DEATH(encodeOrderLight(pkt), "group id out of range");
}

} // namespace
} // namespace olight

/**
 * @file
 * Tests for the parallel sweep driver and the worker pool: the
 * determinism guarantee (N workers produce bit-identical rows to 1
 * worker), the (workload, elements)-keyed GPU-baseline cache, CSV
 * comma guarding, and ThreadPool semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/sweep.hh"
#include "sim/thread_pool.hh"

namespace olight
{
namespace
{

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.workloads = {"Scale", "Copy"};
    spec.modes = {OrderingMode::Fence, OrderingMode::OrderLight};
    spec.tsSizes = {128, 256};
    spec.bmfs = {16};
    spec.elements = 1ull << 12;
    spec.verify = true;
    return spec;
}

TEST(ParallelSweep, BitIdenticalRowsAcrossWorkerCounts)
{
    SweepSpec serial = smallSpec();
    serial.jobs = 1;
    auto rows1 = runSweep(serial);

    SweepSpec parallel = smallSpec();
    parallel.jobs = 4;
    auto rows4 = runSweep(parallel);

    ASSERT_EQ(rows1.size(), rows4.size());
    for (std::size_t i = 0; i < rows1.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(rows1[i].workload, rows4[i].workload);
        EXPECT_EQ(rows1[i].mode, rows4[i].mode);
        EXPECT_EQ(rows1[i].tsBytes, rows4[i].tsBytes);
        EXPECT_EQ(rows1[i].bmf, rows4[i].bmf);
        // Simulated metrics must be bit-identical, not just close.
        EXPECT_EQ(rows1[i].metrics.finishTick,
                  rows4[i].metrics.finishTick);
        EXPECT_EQ(rows1[i].metrics.execMs, rows4[i].metrics.execMs);
        EXPECT_EQ(rows1[i].metrics.pimCommands,
                  rows4[i].metrics.pimCommands);
        EXPECT_EQ(rows1[i].metrics.stallCycles,
                  rows4[i].metrics.stallCycles);
        EXPECT_EQ(rows1[i].metrics.rowHits,
                  rows4[i].metrics.rowHits);
        EXPECT_EQ(rows1[i].eventsExecuted,
                  rows4[i].eventsExecuted);
        EXPECT_TRUE(rows4[i].correct);
    }

    // The acceptance-level check: default CSV output (which omits
    // the wall-clock columns) is byte-identical.
    std::ostringstream csv1, csv4;
    writeCsv(csv1, rows1);
    writeCsv(csv4, rows4);
    EXPECT_EQ(csv1.str(), csv4.str());
}

TEST(ParallelSweep, ProgressLinesStayWholeUnderParallelism)
{
    SweepSpec spec = smallSpec();
    spec.verify = false;
    spec.jobs = 4;
    std::ostringstream progress;
    auto rows = runSweep(spec, [&progress](const SweepRow &row) {
        progress << progressLine(row) << "\n";
    });
    ASSERT_EQ(rows.size(), spec.points());

    // One complete line per point; every line carries the " ms"
    // suffix, so no interleaved/torn writes. The sink is a plain
    // ostringstream with no locking of its own: the callback
    // serialization is what keeps the lines whole.
    std::istringstream in(progress.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NE(line.find(" ms"), std::string::npos) << line;
    }
    EXPECT_EQ(lines, spec.points());
}

TEST(ParallelSweep, GpuBaselineCachedPerWorkloadAndElements)
{
    SweepSpec spec;
    // The same workload listed twice must share one baseline run
    // and both copies must get the same value.
    spec.workloads = {"Scale", "Scale"};
    spec.modes = {OrderingMode::OrderLight};
    spec.tsSizes = {256};
    spec.bmfs = {16};
    spec.elements = 1ull << 12;
    spec.gpuBaseline = true;
    spec.jobs = 2;
    auto rows = runSweep(spec);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_GT(rows[0].gpuMs, 0.0);
    EXPECT_EQ(rows[0].gpuMs, rows[1].gpuMs);

    // A different problem size is a different cache key: the
    // baseline must be recomputed, and longer streams take longer.
    // (Sizes below ~2^16 clamp to the same minimum per-channel
    // layout, so use a contrast large enough to actually differ.)
    SweepSpec bigger = spec;
    bigger.workloads = {"Scale"};
    bigger.elements = 1ull << 18;
    auto big_rows = runSweep(bigger);
    ASSERT_EQ(big_rows.size(), 1u);
    EXPECT_GT(big_rows[0].gpuMs, rows[0].gpuMs);
}

TEST(ParallelSweep, CsvEscapesCommasInWorkloadNames)
{
    SweepRow row;
    row.workload = "Weird,Name\"quoted\"";
    row.mode = OrderingMode::Fence;
    row.tsBytes = 128;
    row.bmf = 16;
    std::ostringstream csv;
    writeCsv(csv, {row});
    // RFC 4180: the field is quoted and inner quotes doubled, so
    // the schema still has a fixed column count.
    EXPECT_NE(csv.str().find("\"Weird,Name\"\"quoted\"\"\",Fence"),
              std::string::npos)
        << csv.str();
    std::string header = csv.str().substr(0, csv.str().find('\n'));
    std::string data = csv.str().substr(csv.str().find('\n') + 1);
    // Count unquoted commas in the data row: must match the header.
    std::size_t header_commas =
        std::size_t(std::count(header.begin(), header.end(), ','));
    std::size_t data_commas = 0;
    bool in_quotes = false;
    for (char c : data) {
        if (c == '"')
            in_quotes = !in_quotes;
        else if (c == ',' && !in_quotes)
            ++data_commas;
    }
    EXPECT_EQ(data_commas, header_commas);
}

TEST(ParallelSweep, TimingColumnsAreOptIn)
{
    SweepRow row;
    row.workload = "Add";
    row.mode = OrderingMode::OrderLight;
    row.hostSeconds = 0.5;
    row.eventsExecuted = 1000;

    std::ostringstream plain, timed;
    writeCsv(plain, {row});
    writeCsv(timed, {row}, true);
    EXPECT_EQ(plain.str().find("host_seconds"), std::string::npos);
    EXPECT_NE(timed.str().find(",host_seconds,events_per_second"),
              std::string::npos);
    EXPECT_NE(timed.str().find(",0.5,2000"), std::string::npos);
}

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after wait().
    pool.submit([&counter] { counter += 10; });
    pool.wait();
    EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPool, WaitRethrowsFirstJobException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool remains usable.
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(37);
        parallelFor(jobs, hits.size(),
                    [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs
                                         << " i=" << i;
    }
}

TEST(ThreadPool, ParallelForStopsClaimingAfterException)
{
    // Regression: after one grid point threw, the workers kept
    // claiming and running the remaining indices, so a failed sweep
    // still simulated the entire grid before wait() rethrew.
    const std::size_t n = 1024;
    std::atomic<std::size_t> executed{0};
    try {
        parallelFor(4, n, [&](std::size_t i) {
            if (i == 0) // the first index claimed by any worker
                throw std::runtime_error("grid point failed");
            ++executed;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        });
        FAIL() << "parallelFor must rethrow the job exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "grid point failed");
    }
    // In-flight calls may finish, but no further points start.
    EXPECT_LT(executed.load(), n / 2)
        << "workers kept claiming grid points after the failure";
}

} // namespace
} // namespace olight

/**
 * @file
 * Channel-partitioned execution tests: the ISSUE-level determinism
 * guarantees (golden workload stats, sweep CSV, litmus verdicts and
 * oracle outcomes byte-identical for every simJobs value) and the
 * steady-state memory discipline of the domain infrastructure
 * (arena-backed mailboxes and sized event heaps allocate nothing
 * once warm).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "alloc_counter.hh"
#include "core/runner.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "sim/event_domain.hh"
#include "sim/event_queue.hh"
#include "verify/litmus.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

/** Render the deterministic per-run outputs of @p r as one string
 *  (metrics JSON plus verification and oracle outcomes; wall-clock
 *  fields deliberately excluded). */
std::string
deterministicOutputs(const RunResult &r)
{
    std::ostringstream os;
    r.metrics.writeJson(os);
    os << "\nverified=" << r.verified << " correct=" << r.correct
       << " why=" << r.why << "\noracle=" << r.oracleViolations
       << "/" << r.oracleChecks << "\n"
       << r.oracleReport;
    return os.str();
}

RunResult
goldenRun(const std::string &workload, unsigned simJobs)
{
    RunOptions opts;
    opts.workload = workload;
    opts.elements = 1ull << 12;
    opts.mode = OrderingMode::OrderLight;
    opts.verify = true;
    opts.oracle = true;
    opts.simJobs = simJobs;
    return runWorkload(opts);
}

/** The acceptance-level guarantee: a verified, oracle-attached
 *  golden workload produces byte-identical deterministic outputs at
 *  simJobs 1 (merge driver), 2 and 4 (windowed partitioned driver).
 *  KMeans is the historical canary — its host/channel credit
 *  interleaving is what shook out the stamp/priority/credit rules
 *  documented in sim/event_domain.hh. */
TEST(Partitioned, GoldenWorkloadByteIdenticalAcrossSimJobs)
{
    for (const char *wl : {"KMeans", "Triad"}) {
        SCOPED_TRACE(wl);
        const std::string at1 = deterministicOutputs(goldenRun(wl, 1));
        const std::string at2 = deterministicOutputs(goldenRun(wl, 2));
        const std::string at4 = deterministicOutputs(goldenRun(wl, 4));
        EXPECT_EQ(at1, at2);
        EXPECT_EQ(at1, at4);
        EXPECT_NE(at1.find("\"finish_tick\""), std::string::npos)
            << "metrics JSON should carry the tick columns: " << at1;
    }
}

/** Run @p workload sequentially (simJobs 1) with the given collapse
 *  policy and render every deterministic output as one string. */
std::string
sequentialOutputs(const char *workload, bool collapse)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    cfg.verifyOracle = true;
    auto wl = makeWorkload(workload);
    wl->build(cfg, 1ull << 12);
    ExecPolicy policy;
    policy.simJobs = 1;
    policy.collapseSequential = collapse;
    System sys(cfg, policy);
    wl->initMemory(sys.mem());
    sys.loadPimKernel(wl->streams());
    RunMetrics metrics = sys.run();
    EXPECT_FALSE(sys.partitioned());

    std::ostringstream os;
    metrics.writeJson(os);
    os << "\nevents=" << sys.eventsExecuted() << "\noracle="
       << sys.oracle()->violationCount() << "/"
       << sys.oracle()->checksPerformed() << "\n";
    sys.oracle()->report(os);
    return os.str();
}

/** The collapsed single-heap fast path (PR 7's jobs=1 recovery) and
 *  the 17-queue merge driver it bypasses are the same simulation:
 *  metrics, event counts and oracle verdicts byte-identical. This is
 *  the pin that keeps the fast path honest — any divergence in the
 *  canonical pop order shows up here, not in a downstream golden. */
TEST(Partitioned, CollapsedAndMergeDriversByteIdentical)
{
    for (const char *wl : {"KMeans", "Triad"}) {
        SCOPED_TRACE(wl);
        const std::string collapsed = sequentialOutputs(wl, true);
        const std::string merged = sequentialOutputs(wl, false);
        EXPECT_EQ(collapsed, merged);
        EXPECT_NE(collapsed.find("oracle=0/"), std::string::npos)
            << "the oracle should attach and stay clean: "
            << collapsed;
    }
}

/** Oracle verdicts (not just counts) must match across drivers. */
TEST(Partitioned, OracleVerdictsIndependentOfSimJobs)
{
    RunResult seq = goldenRun("Daxpy", 1);
    RunResult par = goldenRun("Daxpy", 4);
    EXPECT_TRUE(seq.correct);
    EXPECT_TRUE(par.correct);
    EXPECT_EQ(seq.oracleViolations, par.oracleViolations);
    EXPECT_EQ(seq.oracleChecks, par.oracleChecks);
    EXPECT_EQ(seq.oracleReport, par.oracleReport);
    EXPECT_GT(par.oracleChecks, 0u);
}

/** Sweep CSV (the artifact results/ commits) is byte-identical for
 *  every simJobs value, including with grid-level workers on top. */
TEST(Partitioned, SweepCsvByteIdenticalAcrossSimJobs)
{
    SweepSpec spec;
    spec.workloads = {"Scale", "KMeans"};
    spec.modes = {OrderingMode::Fence, OrderingMode::OrderLight};
    spec.tsSizes = {256};
    spec.bmfs = {16};
    spec.elements = 1ull << 12;
    spec.verify = true;

    std::string csvBySimJobs[3];
    unsigned simJobs[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
        SweepSpec s = spec;
        s.simJobs = simJobs[i];
        s.jobs = (i == 2) ? 2 : 1; // grid workers on top, once
        std::ostringstream os;
        writeCsv(os, runSweep(s));
        csvBySimJobs[i] = os.str();
    }
    EXPECT_EQ(csvBySimJobs[0], csvBySimJobs[1]);
    EXPECT_EQ(csvBySimJobs[0], csvBySimJobs[2]);
}

/** Every litmus-table entry reaches the same verdict (violations,
 *  checks, report text) under every driver, for the mode that must
 *  stay clean and the mode that must trip. */
TEST(Partitioned, LitmusVerdictsIndependentOfSimJobs)
{
    for (const LitmusSpec &spec : litmusTable()) {
        for (OrderingMode mode :
             {OrderingMode::None, OrderingMode::Fence,
              OrderingMode::OrderLight}) {
            for (std::uint64_t seed : {1ull, 7ull}) {
                SCOPED_TRACE(std::string(spec.name) + " mode=" +
                             std::to_string(int(mode)) + " seed=" +
                             std::to_string(seed));
                LitmusResult r1 =
                    runLitmus(spec.name, mode, seed, 1);
                LitmusResult r2 =
                    runLitmus(spec.name, mode, seed, 2);
                LitmusResult r4 =
                    runLitmus(spec.name, mode, seed, 4);
                EXPECT_EQ(r1.violations, r2.violations);
                EXPECT_EQ(r1.violations, r4.violations);
                EXPECT_EQ(r1.checks, r2.checks);
                EXPECT_EQ(r1.checks, r4.checks);
                EXPECT_EQ(r1.report, r2.report);
                EXPECT_EQ(r1.report, r4.report);
            }
        }
    }
}

/** Run @p workload partitioned and return the domain profiles. */
std::vector<DomainProfile>
profilesFor(const char *workload, std::uint64_t elements)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto wl = makeWorkload(workload);
    wl->build(cfg, elements);
    ExecPolicy policy;
    policy.simJobs = 4;
    System sys(cfg, policy);
    wl->initMemory(sys.mem());
    sys.loadPimKernel(wl->streams());
    sys.run();
    EXPECT_TRUE(sys.partitioned());
    return sys.domainProfiles();
}

/** Steady-state memory discipline at the System level: the per-run
 *  allocation sources the profiles count — event-heap regrows and
 *  arena chunk acquisitions — must not scale with run length. A 4x
 *  longer run executes 4x the events and crosses 4x the window
 *  barriers with the *same* heap reservations and the same arena
 *  high-water chunks: the windowed hot path reuses, never grows. */
TEST(Partitioned, DomainHeapAndArenaGrowthIndependentOfRunLength)
{
    auto small = profilesFor("Triad", 1ull << 12);
    auto large = profilesFor("Triad", 1ull << 18);
    ASSERT_EQ(small.size(), large.size());
    std::uint64_t smallEvents = 0, largeEvents = 0;
    for (std::size_t d = 0; d < small.size(); ++d) {
        SCOPED_TRACE(d);
        smallEvents += small[d].events;
        largeEvents += large[d].events;
        EXPECT_EQ(small[d].heapRegrows, 0u);
        EXPECT_EQ(large[d].heapRegrows, 0u);
        EXPECT_EQ(small[d].arenaGrows, large[d].arenaGrows);
    }
    EXPECT_GT(largeEvents, 2 * smallEvents)
        << "the large run should be several times the work";
}

/** Steady-state window cycle of the cross-domain machinery itself —
 *  mailbox pushes from a channel queue's executing context, barrier
 *  drain into the host queue, arena reset — allocates nothing once
 *  the first windows have sized the arena and the heaps. */
TEST(Partitioned, CrossDomainWindowCycleAllocatesNothing)
{
    EventQueue hostQ(256);
    EventQueue chQ(256);
    chQ.setSourceId(1);
    DomainMailbox box;

    std::uint64_t applied = 0;
    auto window = [&](Tick base, int depth) {
        // Channel phase: each event records one cross-domain
        // message, as the partitioned ack/credit wrappers do.
        for (int i = 0; i < depth; ++i)
            chQ.schedule(base + Tick(i), [&] {
                CrossMsg m;
                m.kind = CrossMsg::Kind::Ack;
                m.channel = 0;
                m.applyTick = chQ.now();
                m.stamp = chQ.currentStamp();
                m.prio = chQ.currentPrio();
                box.push(m);
            });
        chQ.runUntil(base + Tick(depth));
        // Barrier: drain in order, replay into the host queue with
        // the recorded (stamp, source), then wholesale-free.
        for (std::size_t i = 0; i < box.size(); ++i) {
            const CrossMsg &m = box[i];
            EventQueue::ExternalScope scope(hostQ, m.stamp, 1);
            hostQ.schedule(m.applyTick, [&] { ++applied; }, m.prio);
        }
        hostQ.runUntil(base + Tick(depth));
        box.reset();
    };

    Tick base = 0;
    const int kDepth = 64;
    for (int w = 0; w < 4; ++w, base += kDepth) // warm up
        window(base, kDepth);

    const std::uint64_t before = test_alloc::newCount();
    for (int w = 0; w < 32; ++w, base += kDepth)
        window(base, kDepth);
    EXPECT_EQ(test_alloc::newCount() - before, 0u)
        << "steady-state window cycles must not allocate";
    EXPECT_EQ(applied, 36u * kDepth);
}

/** The merge key the sequential driver uses across queues matches
 *  the intra-queue entry order: ties on (tick, priority) fall to the
 *  stamp, then the source id, and a full tie reports "not before" so
 *  the caller's scan order decides. */
TEST(Partitioned, FrontBeforeFollowsCanonicalKey)
{
    auto noop = [] {};

    { // earlier tick wins regardless of priority
        EventQueue a(8), b(8);
        a.schedule(5, noop, EventPriority::Stats);
        b.schedule(6, noop, EventPriority::DramTiming);
        EXPECT_TRUE(a.frontBefore(b));
        EXPECT_FALSE(b.frontBefore(a));
    }
    { // same tick: priority decides
        EventQueue a(8), b(8);
        a.schedule(5, noop, EventPriority::Wakeup);
        b.schedule(5, noop, EventPriority::DramTiming);
        EXPECT_TRUE(b.frontBefore(a));
        EXPECT_FALSE(a.frontBefore(b));
    }
    { // same (tick, prio): the earlier scheduling stamp decides
        EventQueue a(8), b(8);
        EventQueue clock(8);
        clock.schedule(1, noop);
        clock.step(); // clock.now() == 1
        a.setExternalSource(&clock, 3);
        a.schedule(5, noop); // stamp 1
        a.clearExternalSource();
        b.schedule(5, noop); // stamp 0 (own now)
        EXPECT_TRUE(b.frontBefore(a));
        EXPECT_FALSE(a.frontBefore(b));
    }
    { // full (tick, prio, stamp, src) tie: neither sorts first
        EventQueue a(8), b(8);
        a.schedule(5, noop);
        b.schedule(5, noop);
        EXPECT_FALSE(a.frontBefore(b));
        EXPECT_FALSE(b.frontBefore(a));
    }
}

/** advanceTo raises the clock without running events, and the
 *  merge-driver external-now routing stamps foreign schedules with
 *  the merged clock and source. */
TEST(Partitioned, AdvanceToAndExternalNowStamping)
{
    EventQueue q(8);
    q.advanceTo(42);
    EXPECT_EQ(q.now(), 42u);
    q.advanceTo(7); // never moves backwards
    EXPECT_EQ(q.now(), 42u);

    // Two same-tick deliveries into q: one stamped through the
    // merged clock (stamp 50), one scheduled later but from an
    // earlier-stamped context (stamp 45 via ExternalScope). The
    // earlier stamp must run first — exactly how the merge driver
    // keeps cross-domain arrivals in global-queue order.
    Tick merged = 50;
    std::vector<int> order;
    q.setExternalNow(&merged, 9);
    q.schedule(60, [&] { order.push_back(1); });
    q.clearExternalNow();
    {
        EventQueue::ExternalScope scope(q, 45, 2);
        q.schedule(60, [&] { order.push_back(2); });
    }
    while (q.step()) {
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
}

} // namespace
} // namespace olight

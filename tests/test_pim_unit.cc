/** @file Direct functional tests of the PIM compute unit. */

#include <gtest/gtest.h>

#include <cstring>

#include "dram/address_map.hh"
#include "dram/storage.hh"
#include "pim/pim_unit.hh"

namespace olight
{
namespace
{

struct PimUnitFixture : public ::testing::Test
{
    PimUnitFixture()
        : map(cfg), unit(cfg, map, mem, 0, "pim0", stats)
    {
    }

    /** Lane-0 address of command block @p j on channel 0. */
    std::uint64_t
    addr(std::uint64_t j)
    {
        return map.localToGlobal(map.laneZeroBlockLocal(j), 0);
    }

    /** Write 8 floats to every lane of block @p j. */
    void
    fillBlock(std::uint64_t j, float base)
    {
        for (std::uint32_t lane = 0; lane < cfg.bmf; ++lane) {
            float vals[8];
            for (int i = 0; i < 8; ++i)
                vals[i] = base + float(lane * 8 + i);
            mem.write(addr(j) + lane * map.laneStride(), vals, 32);
        }
    }

    float
    laneFloat(std::uint64_t j, std::uint32_t lane, int i)
    {
        return mem.readFloat(addr(j) + lane * map.laneStride() +
                             4 * i);
    }

    SystemConfig cfg;
    StatSet stats;
    SparseMemory mem;
    AddressMap map;
    PimUnit unit;
};

TEST_F(PimUnitFixture, LoadComputeStoreRoundTrip)
{
    fillBlock(0, 100.0f);
    Tick t = 0;
    unit.execute(PimInstr::load(0, addr(0), 0), t++);
    unit.execute(PimInstr::compute(AluOp::Scale, 0, 0, 2.0f), t++);
    unit.execute(PimInstr::store(0, addr(1), 0), t++);

    for (std::uint32_t lane : {0u, 7u, 15u}) {
        for (int i : {0, 3, 7}) {
            float in = 100.0f + float(lane * 8 + i);
            EXPECT_EQ(laneFloat(1, lane, i), 2.0f * in)
                << "lane " << lane << " elem " << i;
        }
    }
    EXPECT_EQ(unit.commandsExecuted(), 3u);
    EXPECT_EQ(stats.findScalar("pim0.commands")->value(), 3.0);
    EXPECT_EQ(stats.findScalar("pim0.memCommands")->value(), 2.0);
    // Two memory commands move 32 B across 16 lanes each.
    EXPECT_EQ(stats.findScalar("pim0.bytes")->value(),
              2.0 * 32 * 16);
}

TEST_F(PimUnitFixture, FetchOpCombinesMemoryAndTs)
{
    fillBlock(0, 10.0f);
    fillBlock(1, 1000.0f);
    Tick t = 0;
    unit.execute(PimInstr::load(2, addr(0), 0), t++);
    unit.execute(
        PimInstr::fetchOp(AluOp::Add, 2, 2, addr(1), 0), t++);
    unit.execute(PimInstr::store(2, addr(2), 0), t++);
    EXPECT_EQ(laneFloat(2, 0, 0), 10.0f + 1000.0f);
    EXPECT_EQ(laneFloat(2, 15, 7), (10.0f + 127.0f) +
                                       (1000.0f + 127.0f));
}

TEST_F(PimUnitFixture, LanesAreIsolated)
{
    fillBlock(0, 0.0f);
    unit.execute(PimInstr::load(0, addr(0), 0), 0);
    // Lane 3's slot 0 must hold lane 3's data, not lane 0's.
    float got;
    std::memcpy(&got, unit.ts().slot(3, 0), 4);
    EXPECT_EQ(got, 24.0f); // lane*8 + 0
}

TEST_F(PimUnitFixture, ExecutesAtEqualTicksButNeverBackwards)
{
    unit.execute(PimInstr::load(0, addr(0), 0), 50);
    unit.execute(PimInstr::load(1, addr(1), 0), 50); // same tick ok
    EXPECT_EQ(unit.lastExecTick(), 50u);
}

TEST_F(PimUnitFixture, BmfFourProcessesFourLanes)
{
    SystemConfig small;
    small.bmf = 4;
    AddressMap map4(small);
    SparseMemory mem4;
    StatSet stats4;
    PimUnit unit4(small, map4, mem4, 0, "pim0", stats4);
    std::uint64_t a =
        map4.localToGlobal(map4.laneZeroBlockLocal(0), 0);
    for (std::uint32_t lane = 0; lane < 4; ++lane)
        mem4.writeFloat(a + lane * map4.laneStride(),
                        float(lane + 1));
    unit4.execute(PimInstr::load(0, a, 0), 0);
    unit4.execute(PimInstr::store(0,
                                  map4.localToGlobal(
                                      map4.laneZeroBlockLocal(1), 0),
                                  0),
                  1);
    std::uint64_t b =
        map4.localToGlobal(map4.laneZeroBlockLocal(1), 0);
    for (std::uint32_t lane = 0; lane < 4; ++lane)
        EXPECT_EQ(mem4.readFloat(b + lane * map4.laneStride()),
                  float(lane + 1));
    EXPECT_EQ(stats4.findScalar("pim0.bytes")->value(), 2.0 * 32 * 4);
}

TEST_F(PimUnitFixture, RowWideBitwiseFoldSpansFullRow)
{
    // Blocks 0..colsPerRow-1 are the columns of (bank 0, row 0), so
    // one row-wide command must fold every one of them.
    std::uint64_t cols = map.colsPerRow();
    for (std::uint64_t k = 0; k < cols; ++k) {
        std::uint8_t block[32];
        for (int i = 0; i < 32; ++i)
            block[i] = std::uint8_t(0x80 | (k * 7 + i));
        for (std::uint32_t lane = 0; lane < cfg.bmf; ++lane)
            mem.write(addr(k) + lane * map.laneStride(), block, 32);
    }
    // Seed block `cols` (bank 1, col 0) with the AND identity.
    std::uint8_t ones[32];
    std::memset(ones, 0xff, 32);
    for (std::uint32_t lane = 0; lane < cfg.bmf; ++lane)
        mem.write(addr(cols) + lane * map.laneStride(), ones, 32);

    Tick t = 0;
    unit.execute(PimInstr::load(0, addr(cols), 0), t++);
    unit.execute(PimInstr::load(1, addr(cols + 1), 0), t++); // zeros
    unit.execute(PimInstr::rowFetchOp(AluOp::And, 0, 0, addr(0), 0),
                 t++);
    unit.execute(PimInstr::rowFetchOp(AluOp::Xor, 1, 1, addr(0), 0),
                 t++);

    for (int i : {0, 13, 31}) {
        std::uint8_t want_and = 0xff, want_xor = 0x00;
        for (std::uint64_t k = 0; k < cols; ++k) {
            std::uint8_t byte = std::uint8_t(0x80 | (k * 7 + i));
            want_and &= byte;
            want_xor ^= byte;
        }
        for (std::uint32_t lane : {0u, cfg.bmf - 1}) {
            EXPECT_EQ(unit.ts().slot(lane, 0)[i], want_and)
                << "lane " << lane << " byte " << i;
            EXPECT_EQ(unit.ts().slot(lane, 1)[i], want_xor)
                << "lane " << lane << " byte " << i;
        }
    }
    // The two row-wide commands each count a full row per lane.
    EXPECT_EQ(stats.findScalar("pim0.bytes")->value(),
              2.0 * 32 * cfg.bmf + 2.0 * 32 * cfg.bmf * double(cols));
}

TEST_F(PimUnitFixture, DeathOnRowWideNonRowAlignedAddress)
{
    EXPECT_DEATH(
        unit.execute(PimInstr::rowFetchOp(AluOp::And, 0, 0, addr(1),
                                          0),
                     0),
        "row");
}

TEST_F(PimUnitFixture, DeathOnOutOfOrderExecution)
{
    unit.execute(PimInstr::load(0, addr(0), 0), 100);
    EXPECT_DEATH(unit.execute(PimInstr::load(0, addr(0), 0), 99),
                 "out of bus order");
}

TEST_F(PimUnitFixture, DeathOnWrongChannel)
{
    std::uint64_t wrong =
        map.localToGlobal(map.laneZeroBlockLocal(0), 5);
    EXPECT_DEATH(unit.execute(PimInstr::load(0, wrong, 0), 0),
                 "wrong channel");
}

TEST_F(PimUnitFixture, DeathOnNonLaneZeroAddress)
{
    std::uint64_t lane3 = addr(0) + 3 * map.laneStride();
    EXPECT_DEATH(unit.execute(PimInstr::load(0, lane3, 0), 0),
                 "lane 0");
}

TEST_F(PimUnitFixture, DeathOnOrderPointExecution)
{
    EXPECT_DEATH(unit.execute(PimInstr::orderPoint(0), 0),
                 "cannot execute");
}

} // namespace
} // namespace olight

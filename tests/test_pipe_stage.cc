/** @file Unit tests for the memory-pipe stage and flow control. */

#include <gtest/gtest.h>

#include <deque>

#include "noc/pipe_stage.hh"

namespace olight
{
namespace
{

/** A sink that records deliveries and can refuse credit. */
class RecordingSink : public AcceptPort
{
  public:
    bool
    tryReserve(const Packet &) override
    {
        if (credits == 0)
            return false;
        --credits;
        return true;
    }

    void
    deliver(Packet pkt, Tick when) override
    {
        arrivals.push_back({pkt.id, when});
    }

    void
    subscribe(const Packet &, std::function<void()> cb) override
    {
        waiters.push_back(std::move(cb));
    }

    void
    release(std::uint32_t n)
    {
        credits += n;
        auto copy = std::move(waiters);
        waiters.clear();
        for (auto &cb : copy)
            cb();
    }

    std::uint32_t credits = 1u << 30;
    std::vector<std::pair<std::uint64_t, Tick>> arrivals;
    std::vector<std::function<void()>> waiters;
};

Packet
mkPkt(std::uint64_t id, std::uint64_t addr = 0)
{
    Packet pkt;
    pkt.id = id;
    pkt.instr.addr = addr;
    return pkt;
}

TEST(PipeStage, PreservesFifoOrder)
{
    EventQueue eq;
    StatSet stats;
    PipeStage::Params params;
    params.capacity = 8;
    PipeStage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);

    for (std::uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(stage.tryReserve(mkPkt(i)));
        stage.deliver(mkPkt(i), 0);
    }
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(sink.arrivals[i].first, i);
    EXPECT_TRUE(stage.idle());
}

TEST(PipeStage, ServicesOnePacketPerCoreCycle)
{
    EventQueue eq;
    StatSet stats;
    PipeStage::Params params;
    params.capacity = 8;
    PipeStage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);

    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(stage.tryReserve(mkPkt(i)));
        stage.deliver(mkPkt(i), 0);
    }
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 4u);
    for (std::uint64_t i = 1; i < 4; ++i) {
        EXPECT_GE(sink.arrivals[i].second,
                  sink.arrivals[i - 1].second + corePeriod);
    }
}

TEST(PipeStage, WireLatencyAddsToDelivery)
{
    EventQueue eq;
    StatSet stats;
    PipeStage::Params params;
    params.capacity = 4;
    params.wireLatency = 120 * corePeriod;
    PipeStage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);

    ASSERT_TRUE(stage.tryReserve(mkPkt(1)));
    stage.deliver(mkPkt(1), 0);
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_GE(sink.arrivals[0].second, 120 * corePeriod);
}

TEST(PipeStage, CapacityRefusesAndNotifies)
{
    EventQueue eq;
    StatSet stats;
    PipeStage::Params params;
    params.capacity = 2;
    PipeStage stage(eq, "s", params, stats);
    RecordingSink sink;
    sink.credits = 0; // downstream fully blocked
    stage.setDownstream(&sink);

    EXPECT_TRUE(stage.tryReserve(mkPkt(0)));
    stage.deliver(mkPkt(0), 0);
    EXPECT_TRUE(stage.tryReserve(mkPkt(1)));
    stage.deliver(mkPkt(1), 0);
    EXPECT_FALSE(stage.tryReserve(mkPkt(2)))
        << "stage must refuse beyond capacity";

    bool notified = false;
    stage.subscribe(mkPkt(2), [&] { notified = true; });
    eq.run();
    EXPECT_TRUE(sink.arrivals.empty()) << "downstream blocked";

    sink.release(4);
    eq.run();
    EXPECT_EQ(sink.arrivals.size(), 2u);
    EXPECT_TRUE(notified);
    EXPECT_TRUE(stage.hasCredit());
}

TEST(PipeStage, JitterIsDeterministicPerPacket)
{
    auto run_once = [](std::uint64_t salt) {
        EventQueue eq;
        StatSet stats;
        PipeStage::Params params;
        params.capacity = 64;
        params.jitterCycles = 8;
        params.jitterSalt = salt;
        PipeStage stage(eq, "s", params, stats);
        auto sink = std::make_unique<RecordingSink>();
        stage.setDownstream(sink.get());
        for (std::uint64_t i = 0; i < 16; ++i) {
            EXPECT_TRUE(stage.tryReserve(mkPkt(i * 977)));
            stage.deliver(mkPkt(i * 977), 0);
        }
        eq.run();
        std::vector<Tick> times;
        for (auto &[id, when] : sink->arrivals)
            times.push_back(when);
        return times;
    };
    EXPECT_EQ(run_once(3), run_once(3));
    EXPECT_NE(run_once(3), run_once(4));
}

TEST(PipeStageDeath, CreditUnderflowPanics)
{
    EventQueue eq;
    StatSet stats;
    PipeStage::Params params;
    PipeStage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);
    // Delivering without reserving leads to credit underflow when
    // the packet is forwarded.
    stage.deliver(mkPkt(1), 0);
    EXPECT_DEATH(eq.run(), "credit underflow");
}

} // namespace
} // namespace olight

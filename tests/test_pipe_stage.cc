/** @file Unit tests for the memory-pipe stage and flow control. */

#include <gtest/gtest.h>

#include <deque>

#include "noc/forwarder.hh"
#include "noc/pipe_stage.hh"

namespace olight
{
namespace
{

/** A sink that records deliveries and can refuse credit. */
class RecordingSink : public AcceptPort
{
  public:
    bool
    tryReserve(const Packet &) override
    {
        if (credits == 0)
            return false;
        --credits;
        return true;
    }

    void
    deliver(Packet pkt, Tick when) override
    {
        arrivals.push_back({pkt.id, when});
    }

    void
    enqueueWaiter(const Packet &, PortWaiter &w) override
    {
        waiters.enqueue(w);
    }

    void
    release(std::uint32_t n)
    {
        credits += n;
        waiters.wakeAll();
    }

    std::uint32_t credits = 1u << 30;
    std::vector<std::pair<std::uint64_t, Tick>> arrivals;
    WaiterList waiters;
};

using Stage = PipeStage<RecordingSink>;

Packet
mkPkt(std::uint64_t id, std::uint64_t addr = 0)
{
    Packet pkt;
    pkt.id = id;
    pkt.instr.addr = addr;
    return pkt;
}

TEST(PipeStage, PreservesFifoOrder)
{
    EventQueue eq;
    StatSet stats;
    PipeParams params;
    params.capacity = 8;
    Stage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);

    for (std::uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(stage.tryReserve(mkPkt(i)));
        stage.deliver(mkPkt(i), 0);
    }
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(sink.arrivals[i].first, i);
    EXPECT_TRUE(stage.idle());
}

TEST(PipeStage, ServicesOnePacketPerCoreCycle)
{
    EventQueue eq;
    StatSet stats;
    PipeParams params;
    params.capacity = 8;
    Stage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);

    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(stage.tryReserve(mkPkt(i)));
        stage.deliver(mkPkt(i), 0);
    }
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 4u);
    for (std::uint64_t i = 1; i < 4; ++i) {
        EXPECT_GE(sink.arrivals[i].second,
                  sink.arrivals[i - 1].second + corePeriod);
    }
}

TEST(PipeStage, WireLatencyAddsToDelivery)
{
    EventQueue eq;
    StatSet stats;
    PipeParams params;
    params.capacity = 4;
    params.wireLatency = 120 * corePeriod;
    Stage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);

    ASSERT_TRUE(stage.tryReserve(mkPkt(1)));
    stage.deliver(mkPkt(1), 0);
    eq.run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_GE(sink.arrivals[0].second, 120 * corePeriod);
}

TEST(PipeStage, CapacityRefusesAndNotifies)
{
    EventQueue eq;
    StatSet stats;
    PipeParams params;
    params.capacity = 2;
    Stage stage(eq, "s", params, stats);
    RecordingSink sink;
    sink.credits = 0; // downstream fully blocked
    stage.setDownstream(&sink);

    EXPECT_TRUE(stage.tryReserve(mkPkt(0)));
    stage.deliver(mkPkt(0), 0);
    EXPECT_TRUE(stage.tryReserve(mkPkt(1)));
    stage.deliver(mkPkt(1), 0);
    EXPECT_FALSE(stage.tryReserve(mkPkt(2)))
        << "stage must refuse beyond capacity";

    int notified = 0;
    PortWaiter waiter([](void *n) { ++*static_cast<int *>(n); },
                      &notified);
    stage.enqueueWaiter(mkPkt(2), waiter);
    eq.run();
    EXPECT_TRUE(sink.arrivals.empty()) << "downstream blocked";

    sink.release(4);
    eq.run();
    EXPECT_EQ(sink.arrivals.size(), 2u);
    EXPECT_EQ(notified, 1) << "space wakeup must be one-shot";
    EXPECT_FALSE(waiter.linked());
    EXPECT_TRUE(stage.hasCredit());
}

TEST(PipeStage, JitterIsDeterministicPerPacket)
{
    auto run_once = [](std::uint64_t salt) {
        EventQueue eq;
        StatSet stats;
        PipeParams params;
        params.capacity = 64;
        params.jitterCycles = 8;
        params.jitterSalt = salt;
        Stage stage(eq, "s", params, stats);
        auto sink = std::make_unique<RecordingSink>();
        stage.setDownstream(sink.get());
        for (std::uint64_t i = 0; i < 16; ++i) {
            EXPECT_TRUE(stage.tryReserve(mkPkt(i * 977)));
            stage.deliver(mkPkt(i * 977), 0);
        }
        eq.run();
        std::vector<Tick> times;
        for (auto &[id, when] : sink->arrivals)
            times.push_back(when);
        return times;
    };
    EXPECT_EQ(run_once(3), run_once(3));
    EXPECT_NE(run_once(3), run_once(4));
}

TEST(PipeStageDeath, CreditUnderflowPanics)
{
    EventQueue eq;
    StatSet stats;
    PipeParams params;
    Stage stage(eq, "s", params, stats);
    RecordingSink sink;
    stage.setDownstream(&sink);
    // Delivering without reserving leads to credit underflow when
    // the packet is forwarded.
    stage.deliver(mkPkt(1), 0);
    EXPECT_DEATH(eq.run(), "credit underflow");
}

// --------------------------------------------------------------------
// Backpressure invariants on a saturated capacity-1 chain
// --------------------------------------------------------------------

/** Feeds packets into the chain head as fast as credits allow,
 *  using the same Forwarder the production senders use. */
template <class Head>
class Feeder
{
  public:
    Feeder(EventQueue &eq, Head &head, std::uint64_t total)
        : eq_(eq), total_(total)
    {
        fwd_.bind(
            head, [](void *self) { static_cast<Feeder *>(self)->pump(); },
            this);
    }

    void
    pump()
    {
        while (sent_ < total_) {
            Packet pkt = mkPkt(sent_);
            if (!fwd_.tryReserve(pkt))
                return; // parked; the wakeup re-enters pump()
            fwd_.deliver(std::move(pkt), eq_.now());
            ++sent_;
        }
    }

    std::uint64_t sent() const { return sent_; }
    std::uint64_t wakeups() const { return fwd_.wakeups(); }

  private:
    EventQueue &eq_;
    Forwarder<Head> fwd_;
    std::uint64_t total_;
    std::uint64_t sent_ = 0;
};

/** Three capacity-1 stages in series; every hop stalls on every
 *  packet, so each forward progress step rides a space wakeup. */
TEST(PipeBackpressure, SaturatedChainLosesNoWakeups)
{
    EventQueue eq;
    StatSet stats;
    using S3 = PipeStage<RecordingSink>;
    using S2 = PipeStage<S3>;
    using S1 = PipeStage<S2>;

    PipeParams p1;
    p1.capacity = 1;
    PipeParams p2 = p1;
    p2.jitterCycles = 4; // jitter must not break wakeup accounting
    p2.jitterSalt = 0x5eed;
    PipeParams p3 = p1;

    RecordingSink sink;
    S3 s3(eq, "s3", p3, stats);
    S2 s2(eq, "s2", p2, stats);
    S1 s1(eq, "s1", p1, stats);
    s3.setDownstream(&sink);
    s2.setDownstream(&s3);
    s1.setDownstream(&s2);

    constexpr std::uint64_t kTotal = 256;
    Feeder<S1> feeder(eq, s1, kTotal);
    feeder.pump();
    eq.run();

    // No lost wakeup: a dropped notification would strand the chain
    // with undelivered packets when the event queue drains.
    EXPECT_EQ(feeder.sent(), kTotal);
    ASSERT_EQ(sink.arrivals.size(), kTotal)
        << "packets lost in a saturated chain";
    // No duplicated or reordered delivery.
    for (std::uint64_t i = 0; i < kTotal; ++i)
        EXPECT_EQ(sink.arrivals[i].first, i);
    EXPECT_TRUE(s1.idle() && s2.idle() && s3.idle());
    // The feeder genuinely exercised backpressure.
    EXPECT_GT(feeder.wakeups(), 0u);
}

/** Same chain, but the sink throttles: credits trickle back on a
 *  jittered schedule, forcing repeated park/wake cycles at the tail
 *  while upstream stages stay saturated. */
TEST(PipeBackpressure, ThrottledSinkKeepsFifoUnderJitter)
{
    EventQueue eq;
    StatSet stats;
    using S3 = PipeStage<RecordingSink>;
    using S2 = PipeStage<S3>;
    using S1 = PipeStage<S2>;

    PipeParams p;
    p.capacity = 1;
    p.jitterCycles = 8;
    p.jitterSalt = 0xb0a7;

    RecordingSink sink;
    sink.credits = 0;
    S3 s3(eq, "s3", p, stats);
    S2 s2(eq, "s2", p, stats);
    S1 s1(eq, "s1", p, stats);
    s3.setDownstream(&sink);
    s2.setDownstream(&s3);
    s1.setDownstream(&s2);

    constexpr std::uint64_t kTotal = 64;
    Feeder<S1> feeder(eq, s1, kTotal);
    feeder.pump();

    // Release one credit at an irregular cadence; keep going until
    // everything drained.
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        Tick when = Tick(1 + i * 7 + (i % 3) * 11) * corePeriod;
        eq.schedule(when, [&sink] { sink.release(1); });
    }
    eq.run();

    ASSERT_EQ(sink.arrivals.size(), kTotal);
    for (std::uint64_t i = 0; i < kTotal; ++i)
        EXPECT_EQ(sink.arrivals[i].first, i)
            << "duplicated or out-of-order wakeup at " << i;
    EXPECT_TRUE(s1.idle() && s2.idle() && s3.idle());
    EXPECT_GT(s3.downstreamWakeups(), 0u)
        << "the tail stage must have parked on the blocked sink";
}

/** Two senders parked on one stage wake FIFO, preserving retry
 *  order (the multi-sender case: icnt queues + host share l2s.in). */
TEST(PipeBackpressure, MultipleWaitersWakeInEnqueueOrder)
{
    EventQueue eq;
    StatSet stats;
    PipeParams p;
    p.capacity = 1;
    Stage stage(eq, "s", p, stats);
    RecordingSink sink;
    sink.credits = 0;
    stage.setDownstream(&sink);

    ASSERT_TRUE(stage.tryReserve(mkPkt(0)));
    stage.deliver(mkPkt(0), 0);
    eq.run(); // stage now parked on the blocked sink, queue full

    std::vector<int> order;
    struct Ctx
    {
        std::vector<int> *order;
        int id;
    };
    Ctx a{&order, 1}, b{&order, 2}, c{&order, 3};
    auto wake = [](void *ctx) {
        auto *w = static_cast<Ctx *>(ctx);
        w->order->push_back(w->id);
    };
    PortWaiter wa(wake, &a), wb(wake, &b), wc(wake, &c);
    ASSERT_FALSE(stage.tryReserve(mkPkt(1)));
    stage.enqueueWaiter(mkPkt(1), wa);
    stage.enqueueWaiter(mkPkt(2), wb);
    stage.enqueueWaiter(mkPkt(3), wc);

    // Cancellation drops wb without disturbing its neighbours.
    wb.cancel();
    EXPECT_FALSE(wb.linked());

    sink.release(1);
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 3);
}

} // namespace
} // namespace olight

/**
 * @file
 * Property sweep: ordering correctness must hold for every modeled
 * configuration, not just Table 1 — channel counts, sub-partition
 * counts, collector jitter, queue sizes, and clock-domain effects
 * all change where reordering happens, and OrderLight must stay
 * sufficient everywhere. Each point runs with the ordering oracle
 * attached, so a failure names the pipe stage that broke order, not
 * just the corrupted output array.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"

namespace olight
{
namespace
{

struct ConfigPoint
{
    std::uint32_t channels;
    std::uint32_t subParts;
    std::uint32_t collectorJitter;
    std::uint32_t l2QueueSize;
    const char *name;
};

class ConfigSweep : public ::testing::TestWithParam<ConfigPoint>
{
};

TEST_P(ConfigSweep, OrderLightStaysCorrect)
{
    const ConfigPoint &p = GetParam();
    SystemConfig base;
    base.numChannels = p.channels;
    base.l2SubPartitions = p.subParts;
    base.collectorJitter = p.collectorJitter;
    base.l2QueueSize = p.l2QueueSize;

    RunOptions opts;
    opts.workload = "Triad";
    opts.mode = OrderingMode::OrderLight;
    opts.elements = 1ull << 15;
    opts.oracle = true;
    opts.base = base;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.correct) << p.name << ": " << r.why;
    EXPECT_GT(r.metrics.olPackets, 0u);
    EXPECT_EQ(r.oracleViolations, 0u)
        << p.name << ":\n" << r.oracleReport;
    EXPECT_GT(r.oracleChecks, 0u) << p.name;
}

TEST_P(ConfigSweep, FenceStaysCorrect)
{
    const ConfigPoint &p = GetParam();
    SystemConfig base;
    base.numChannels = p.channels;
    base.l2SubPartitions = p.subParts;
    base.collectorJitter = p.collectorJitter;
    base.l2QueueSize = p.l2QueueSize;

    RunOptions opts;
    opts.workload = "Daxpy";
    opts.mode = OrderingMode::Fence;
    opts.elements = 1ull << 15;
    opts.oracle = true;
    opts.base = base;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.correct) << p.name << ": " << r.why;
    EXPECT_EQ(r.oracleViolations, 0u)
        << p.name << ":\n" << r.oracleReport;
    EXPECT_GT(r.oracleChecks, 0u) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweep,
    ::testing::Values(
        ConfigPoint{4, 1, 0, 16, "small_noJitter"},
        ConfigPoint{4, 4, 16, 8, "small_wild"},
        ConfigPoint{8, 2, 8, 64, "mid_default"},
        ConfigPoint{8, 8, 32, 4, "mid_divergent_tinyQueues"},
        ConfigPoint{16, 1, 4, 64, "full_singlePath"},
        ConfigPoint{16, 4, 16, 32, "full_fourPaths"},
        ConfigPoint{32, 2, 8, 64, "wide"},
        ConfigPoint{1, 2, 8, 64, "singleChannel"},
        ConfigPoint{64, 2, 8, 64, "maxChannels"}),
    [](const auto &info) { return std::string(info.param.name); });

/** Tiny queues everywhere: backpressure-heavy, deadlock hunting. */
TEST(ConfigStress, TinyQueuesStillComplete)
{
    SystemConfig base;
    base.smQueueSize = 2;
    base.l2QueueSize = 3;
    base.readQueueSize = 4;
    base.writeQueueSize = 4;
    base.writeDrainWatermark = 3;
    base.writeDrainLow = 1;
    base.collectorUnits = 2;

    for (auto mode :
         {OrderingMode::Fence, OrderingMode::OrderLight}) {
        RunOptions opts;
        opts.workload = "Add";
        opts.mode = mode;
        opts.elements = 1ull << 14;
        opts.oracle = true;
        opts.base = base;
        RunResult r = runWorkload(opts);
        EXPECT_TRUE(r.correct)
            << toString(mode) << ": " << r.why;
        EXPECT_EQ(r.oracleViolations, 0u)
            << toString(mode) << ":\n" << r.oracleReport;
    }
}

/** One warp per SM and many warps per SM both work. */
TEST(ConfigStress, WarpPackingVariants)
{
    for (std::uint32_t warps : {1u, 4u, 16u}) {
        SystemConfig base;
        base.warpsPerSm = warps;
        base.numSms = (base.numChannels + warps - 1) / warps;
        RunOptions opts;
        opts.workload = "Copy";
        opts.mode = OrderingMode::OrderLight;
        opts.elements = 1ull << 14;
        opts.base = base;
        // configFor() overrides provisioning; bypass it by running
        // the system directly through runWorkload's base, then
        // validating correctness only.
        SystemConfig cfg = configFor(opts.mode, opts.tsBytes,
                                     opts.bmf, base);
        cfg.warpsPerSm = warps;
        cfg.numSms = (cfg.numChannels + warps - 1) / warps;
        cfg.validate();
        RunResult r = runWorkload(opts);
        EXPECT_TRUE(r.correct) << "warps=" << warps << ": " << r.why;
    }
}

} // namespace
} // namespace olight

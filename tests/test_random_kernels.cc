/**
 * @file
 * Randomized-kernel property test: generate arbitrary well-formed
 * PIM kernels (random tile shapes, slot assignments, ALU ops,
 * operand blocks, store targets — with ordering points exactly at
 * the phase boundaries the data dependences require) and check that
 * the timing simulation under a real ordering primitive is
 * bit-identical to the golden program-order execution. This covers
 * interleavings no hand-written workload reaches.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "sim/random.hh"
#include "workloads/reference.hh"

namespace olight
{
namespace
{

struct RandomKernel
{
    RandomKernel(const SystemConfig &cfg, std::uint64_t seed)
        : map(cfg), alloc(map)
    {
        Rng rng(seed);
        in = alloc.alloc("in", 1ull << 14, 0);
        aux = alloc.alloc("aux", 1ull << 14, 0);
        out = alloc.alloc("out", 1ull << 15, 0);

        std::uint32_t slots = cfg.tsSlots();
        for (std::uint16_t ch = 0; ch < cfg.numChannels; ++ch) {
            KernelBuilder kb(map, ch);
            std::uint64_t in_blocks = kb.blocksPerChannel(in);
            std::uint64_t out_blocks = kb.blocksPerChannel(out);
            std::uint64_t out_cursor = 0;
            std::uint32_t phases = 8 + rng.nextRange(8);
            for (std::uint32_t p = 0; p < phases; ++p) {
                // Load phase: distinct slots, random input blocks.
                std::uint32_t n =
                    1 + std::uint32_t(rng.nextRange(slots));
                for (std::uint32_t k = 0; k < n; ++k) {
                    kb.load(std::uint8_t(k), in,
                            rng.nextRange(in_blocks));
                }
                kb.orderPoint(0);

                // Compute phase: at most one in-place op per slot,
                // or a fetch-op mixing in a random aux block.
                for (std::uint32_t k = 0; k < n; ++k) {
                    switch (rng.nextRange(4)) {
                      case 0:
                        kb.compute(AluOp::Affine, std::uint8_t(k),
                                   std::uint8_t(k), 0, 2.0f, 1.0f);
                        break;
                      case 1:
                        kb.compute(AluOp::Relu, std::uint8_t(k),
                                   std::uint8_t(k), 0);
                        break;
                      case 2:
                        kb.fetchOp(AluOp::Add, std::uint8_t(k),
                                   std::uint8_t(k), aux,
                                   rng.nextRange(in_blocks));
                        break;
                      default:
                        break; // some slots pass through untouched
                    }
                }
                kb.orderPoint(0);

                // Store phase: unique output blocks, so there are
                // no write-write races across phases.
                for (std::uint32_t k = 0;
                     k < n && out_cursor < out_blocks; ++k)
                    kb.store(std::uint8_t(k), out, out_cursor++);
                kb.orderPoint(0);
            }
            streams.push_back(kb.take());
        }
    }

    void
    init(SparseMemory &mem) const
    {
        Rng rng(99);
        for (std::uint64_t off = 0; off < in.bytes; off += 4) {
            mem.writeFloat(in.base + off,
                           float(int(rng.nextRange(17)) - 8));
            mem.writeFloat(aux.base + off,
                           float(int(rng.nextRange(17)) - 8));
        }
    }

    AddressMap map;
    ArrayAllocator alloc;
    PimArray in, aux, out;
    std::vector<std::vector<PimInstr>> streams;
};

class RandomKernels
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, OrderingMode>>
{
};

TEST_P(RandomKernels, TimingMatchesGolden)
{
    std::uint64_t seed = std::get<0>(GetParam());
    OrderingMode mode = std::get<1>(GetParam());
    SystemConfig cfg = configFor(mode, 256, 16);
    RandomKernel kernel(cfg, seed);

    System sys(cfg);
    kernel.init(sys.mem());
    sys.loadPimKernel(kernel.streams);
    sys.run();

    SparseMemory golden;
    kernel.init(golden);
    runGolden(cfg, kernel.map, kernel.streams, golden);

    std::string why;
    EXPECT_TRUE(compareArray(sys.mem(), golden, kernel.out, why))
        << "seed " << seed << ": " << why;
    EXPECT_TRUE(compareArray(sys.mem(), golden, kernel.in, why))
        << why;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomKernels,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull,
                                         5ull, 6ull),
                       ::testing::Values(OrderingMode::Fence,
                                         OrderingMode::OrderLight,
                                         OrderingMode::SeqNum)),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               "_" + toString(std::get<1>(info.param));
    });

} // namespace
} // namespace olight

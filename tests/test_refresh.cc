/** @file Tests for the all-bank refresh model. */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "dram/channel_timing.hh"

namespace olight
{
namespace
{

TEST(Refresh, StealsBandwidthPeriodically)
{
    SystemConfig cfg;
    StatSet stats;
    ChannelTiming ct(cfg, "dram", stats);

    // Stream row hits far past several refresh intervals.
    Tick horizon = Tick(cfg.timing.refi) * memPeriod * 4;
    std::uint64_t cols = 0;
    while (ct.cmdBusFreeAt() < horizon) {
        ct.reserve(AccessKind::Read, 0, 0, 0);
        ++cols;
    }
    EXPECT_GE(ct.refreshes(), 3u);
    EXPECT_EQ(stats.findScalar("dram.refreshes")->value(),
              double(ct.refreshes()));

    // Without refresh the same horizon fits more columns.
    SystemConfig no_ref = cfg;
    no_ref.timing.refreshEnabled = false;
    StatSet stats2;
    ChannelTiming ct2(no_ref, "dram", stats2);
    std::uint64_t cols2 = 0;
    while (ct2.cmdBusFreeAt() < horizon) {
        ct2.reserve(AccessKind::Read, 0, 0, 0);
        ++cols2;
    }
    EXPECT_GT(cols2, cols);
    EXPECT_EQ(ct2.refreshes(), 0u);
    // Refresh overhead is roughly tRFC / tREFI (~6-7%), plus the
    // row reopen after each refresh.
    double overhead = 1.0 - double(cols) / double(cols2);
    EXPECT_GT(overhead, 0.04);
    EXPECT_LT(overhead, 0.12);
}

TEST(Refresh, ClosesOpenRows)
{
    SystemConfig cfg;
    StatSet stats;
    ChannelTiming ct(cfg, "dram", stats);
    ct.reserve(AccessKind::Read, 2, 7, 0);
    EXPECT_EQ(ct.openRowOf(2), 7);

    // Jump past a refresh deadline.
    Tick past = Tick(cfg.timing.refi + 10) * memPeriod;
    Reservation r = ct.reserve(AccessKind::Read, 2, 7, past);
    EXPECT_FALSE(r.rowHit)
        << "the refresh must have closed the open row";
    EXPECT_GE(ct.refreshes(), 1u);
}

TEST(Refresh, EndToEndRunsStayCorrectAndSlightlySlower)
{
    RunOptions opts;
    opts.workload = "Add";
    opts.elements = 1ull << 18;
    opts.verify = true;
    RunResult with_refresh = runWorkload(opts);
    EXPECT_TRUE(with_refresh.correct) << with_refresh.why;

    RunOptions no_ref = opts;
    no_ref.verify = false;
    no_ref.base.timing.refreshEnabled = false;
    RunResult without = runWorkload(no_ref);
    EXPECT_GE(with_refresh.metrics.execMs, without.metrics.execMs);
}

} // namespace
} // namespace olight

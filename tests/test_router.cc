/**
 * @file
 * Fleet router tests (serve/router.hh): live 3-backend fleets with
 * real sockets — rendezvous sharding, run passthrough, sweep
 * fan-out reassembled byte-identical to a single daemon, in-request
 * dedupe, failover around a killed backend, backend_unavailable
 * when the whole fleet is down, and health probing. Suites are
 * named Serve* so `ctest -R serve_tsan` runs them under TSan too.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "serve/json_in.hh"
#include "serve/net.hh"
#include "serve/router.hh"
#include "serve/server.hh"

using namespace olight;
using namespace olight::serve;

namespace
{

/** A blocking request/reply client over one connection. */
class Client
{
  public:
    static Client overUnix(const std::string &path)
    {
        std::string err;
        Client c;
        c.fd_ = connectUnix(path, err);
        EXPECT_TRUE(c.fd_.valid()) << err;
        return c;
    }

    std::string
    roundTrip(const std::string &request)
    {
        if (!writeAll(fd_.get(), request + "\n"))
            return "";
        std::string reply;
        if (readLine(fd_.get(), reply, carry_) != ReadStatus::Line)
            return "";
        return reply;
    }

  private:
    Fd fd_;
    std::string carry_;
};

/** A 3-backend fleet behind one router, all in-process. */
class ServeRouterTest : public ::testing::Test
{
  protected:
    static constexpr int kBackends = 3;

    void
    SetUp() override
    {
        const std::string stem =
            "/tmp/olight_rt_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++);
        RouterOptions ropts;
        for (int i = 0; i < kBackends; ++i) {
            backendPaths_.push_back(stem + "_be" +
                                    std::to_string(i) + ".sock");
            ServeOptions opts;
            opts.unixPath = backendPaths_.back();
            opts.jobs = 1;
            backends_.push_back(std::make_unique<Server>(opts));
            std::string err;
            ASSERT_TRUE(backends_.back()->start(err)) << err;
            BackendSpec spec;
            spec.unixPath = backendPaths_.back();
            ropts.backends.push_back(spec);
        }
        routerPath_ = stem + "_router.sock";
        ropts.unixPath = routerPath_;
        ropts.healthIntervalMs = 0; // probe-free by default:
        ropts.backoffMs = 0;        // deterministic eligibility
        router_ = std::make_unique<Router>(ropts);
        std::string err;
        ASSERT_TRUE(router_->start(err)) << err;
    }

    void
    TearDown() override
    {
        router_.reset(); // drains in its destructor
        backends_.clear();
        ::unlink(routerPath_.c_str());
        for (const std::string &p : backendPaths_)
            ::unlink(p.c_str());
    }

    /** Simulate a crash: stop backend @p i and remove its socket. */
    void
    killBackend(int i)
    {
        backends_[i].reset();
        ::unlink(backendPaths_[i].c_str());
    }

    /** Which backend executed at least one request? */
    int
    executingBackend() const
    {
        for (int i = 0; i < kBackends; ++i) {
            if (!backends_[i])
                continue;
            ServeSnapshot s = backends_[i]->snapshot();
            if (s.runsExecuted + s.sweepsExecuted > 0)
                return i;
        }
        return -1;
    }

    static int counter_;
    std::vector<std::string> backendPaths_;
    std::string routerPath_;
    std::vector<std::unique_ptr<Server>> backends_;
    std::unique_ptr<Router> router_;
};

int ServeRouterTest::counter_ = 0;

const char *kRunRequest =
    R"({"cmd":"run","workload":"Copy","elements":4096,)"
    R"("mode":"orderlight"})";

const char *kSweepRequest =
    R"({"cmd":"sweep","id":11,"workloads":["Copy","Add"],)"
    R"("modes":["fence","orderlight"],"ts":[256],"bmf":[16],)"
    R"("elements":4096})";

} // namespace

TEST_F(ServeRouterTest, PingAndStatsAnsweredLocally)
{
    Client c = Client::overUnix(routerPath_);
    EXPECT_EQ(c.roundTrip(R"({"cmd":"ping","id":3})"),
              "{\"ok\":true,\"cmd\":\"ping\",\"id\":3}");

    std::string stats = c.roundTrip(R"({"cmd":"stats"})");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(stats, v, err)) << stats;
    EXPECT_TRUE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("stats")->find("role")->string, "router");
    ASSERT_EQ(v.find("stats")->find("backends")->array.size(),
              std::size_t(kBackends));
    for (const JsonValue &b :
         v.find("stats")->find("backends")->array)
        EXPECT_TRUE(b.find("healthy")->boolean);
    // Nothing was forwarded for ping/stats.
    for (int i = 0; i < kBackends; ++i)
        EXPECT_EQ(backends_[i]->snapshot().requests, 0u);
}

TEST_F(ServeRouterTest, RunPassthroughShardsAndCaches)
{
    Client c = Client::overUnix(routerPath_);
    std::string cold = c.roundTrip(kRunRequest);
    ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
    EXPECT_NE(cold.find("\"cached\":false"), std::string::npos);

    // Exactly one backend owns this fingerprint's shard.
    int owner = executingBackend();
    ASSERT_GE(owner, 0);
    for (int i = 0; i < kBackends; ++i)
        EXPECT_EQ(backends_[i]->snapshot().runsExecuted,
                  i == owner ? 1u : 0u);

    // The repeat lands on the same backend and hits its cache; the
    // reply differs from the cold one only in the cached token.
    std::string warm = c.roundTrip(kRunRequest);
    std::string patched = cold;
    patched.replace(patched.find("\"cached\":false"),
                    std::string("\"cached\":false").size(),
                    "\"cached\":true");
    EXPECT_EQ(patched, warm);
    EXPECT_EQ(backends_[owner]->snapshot().runsExecuted, 1u);
    EXPECT_EQ(router_->snapshot().runsForwarded, 2u);
}

TEST_F(ServeRouterTest, SweepFanoutByteIdenticalToSingleDaemon)
{
    // The same grid, cold, on a lone daemon...
    ServeOptions opts;
    opts.unixPath = routerPath_ + ".lone";
    opts.jobs = 1;
    {
        Server lone(opts);
        std::string err;
        ASSERT_TRUE(lone.start(err)) << err;
        Client direct = Client::overUnix(opts.unixPath);
        std::string single = direct.roundTrip(kSweepRequest);
        ASSERT_NE(single.find("\"ok\":true"), std::string::npos)
            << single;

        // ...must equal the router's fanned-out reassembly, byte
        // for byte: same rows, same envelope, same id echo.
        Client c = Client::overUnix(routerPath_);
        std::string fanned = c.roundTrip(kSweepRequest);
        EXPECT_EQ(single, fanned);

        RouterSnapshot s = router_->snapshot();
        EXPECT_EQ(s.sweepsFanned, 1u);
        EXPECT_EQ(s.subRequests, 4u); // 2 workloads x 2 modes

        // Warm repeat: every point now sits in a backend cache, so
        // the fleet-level reply flips to cached:true — and is
        // otherwise byte-identical again.
        std::string warm = c.roundTrip(kSweepRequest);
        std::string patched = fanned;
        patched.replace(patched.find("\"cached\":false"),
                        std::string("\"cached\":false").size(),
                        "\"cached\":true");
        EXPECT_EQ(patched, warm);
    }
    ::unlink(opts.unixPath.c_str());
}

TEST_F(ServeRouterTest, DuplicateSweepPointsForwardOnce)
{
    Client c = Client::overUnix(routerPath_);
    // ts [256,256]: the grid enumerates 4 points but only 2 are
    // distinct; the router must forward 2 and reuse their rows.
    std::string reply = c.roundTrip(
        R"({"cmd":"sweep","workloads":["Copy"],)"
        R"("modes":["fence","orderlight"],"ts":[256,256],)"
        R"("bmf":[16],"elements":4096})");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(reply, v, err)) << reply;
    EXPECT_TRUE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("result")->find("points")->number, 4.0);
    ASSERT_EQ(v.find("result")->find("rows")->array.size(), 4u);

    RouterSnapshot s = router_->snapshot();
    EXPECT_EQ(s.subRequests, 2u);
    EXPECT_EQ(s.pointsDeduped, 2u);
    std::uint64_t executed = 0;
    for (int i = 0; i < kBackends; ++i)
        executed += backends_[i]->snapshot().sweepsExecuted;
    EXPECT_EQ(executed, 2u);
}

TEST_F(ServeRouterTest, FailoverReHomesAKilledBackendsShard)
{
    Client c = Client::overUnix(routerPath_);
    std::string cold = c.roundTrip(kRunRequest);
    ASSERT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
    int owner = executingBackend();
    ASSERT_GE(owner, 0);

    // Crash the shard owner. The same request must re-home to a
    // surviving backend — structurally fine (cold there), never an
    // error reply.
    killBackend(owner);
    std::string rehomed = c.roundTrip(kRunRequest);
    EXPECT_NE(rehomed.find("\"ok\":true"), std::string::npos)
        << rehomed;
    EXPECT_NE(rehomed.find("\"cached\":false"), std::string::npos);
    EXPECT_EQ(cold, rehomed); // both cold: byte-identical bodies

    RouterSnapshot s = router_->snapshot();
    EXPECT_GE(s.failovers, 1u);
    int down = 0;
    for (const RouterSnapshot::Backend &b : s.backends)
        down += b.healthy ? 0 : 1;
    EXPECT_EQ(down, 1);

    // Sweeps keep working against the 2-backend fleet too.
    std::string sweep = c.roundTrip(kSweepRequest);
    EXPECT_NE(sweep.find("\"ok\":true"), std::string::npos)
        << sweep;
}

TEST_F(ServeRouterTest, WholeFleetDownIsStructuredUnavailable)
{
    for (int i = 0; i < kBackends; ++i)
        killBackend(i);
    Client c = Client::overUnix(routerPath_);
    std::string reply = c.roundTrip(kRunRequest);
    EXPECT_NE(reply.find("\"backend_unavailable\""),
              std::string::npos)
        << reply;
    std::string sweep = c.roundTrip(kSweepRequest);
    EXPECT_NE(sweep.find("\"backend_unavailable\""),
              std::string::npos)
        << sweep;
    EXPECT_EQ(router_->snapshot().unavailable, 2u);
    // The router itself is healthy and still answers locally.
    EXPECT_NE(c.roundTrip(R"({"cmd":"ping"})").find("\"ok\":true"),
              std::string::npos);
}

TEST_F(ServeRouterTest, DrainStopsTheRouterNotTheBackends)
{
    Client c = Client::overUnix(routerPath_);
    std::string drain = c.roundTrip(R"({"cmd":"drain"})");
    EXPECT_NE(drain.find("\"draining\":true"), std::string::npos);
    router_->join(); // must return: drain request shuts us down
    EXPECT_TRUE(router_->snapshot().draining);
    // Backends outlive their front tier.
    Client b = Client::overUnix(backendPaths_[0]);
    EXPECT_NE(b.roundTrip(R"({"cmd":"ping"})").find("\"ok\":true"),
              std::string::npos);
}

TEST(ServeRouterConfig, RejectsEmptyAndDuplicateBackends)
{
    {
        RouterOptions opts;
        opts.tcpPort = 0;
        Router r(opts);
        std::string err;
        EXPECT_FALSE(r.start(err));
        EXPECT_NE(err.find("--backend"), std::string::npos);
    }
    {
        RouterOptions opts;
        opts.tcpPort = 0;
        BackendSpec b;
        b.unixPath = "/tmp/same.sock";
        opts.backends = {b, b};
        Router r(opts);
        std::string err;
        EXPECT_FALSE(r.start(err));
        EXPECT_NE(err.find("duplicate"), std::string::npos);
    }
}

TEST(ServeRouterHealth, ProberMarksDeadBackendDown)
{
    const std::string stem = "/tmp/olight_rth_" +
                             std::to_string(::getpid()) + ".sock";
    ServeOptions opts;
    opts.unixPath = stem + ".be";
    opts.jobs = 1;
    auto backend = std::make_unique<Server>(opts);
    std::string err;
    ASSERT_TRUE(backend->start(err)) << err;

    RouterOptions ropts;
    ropts.unixPath = stem + ".rt";
    BackendSpec spec;
    spec.unixPath = opts.unixPath;
    ropts.backends.push_back(spec);
    ropts.healthIntervalMs = 50;
    ropts.backoffMs = 50;
    Router router(ropts);
    ASSERT_TRUE(router.start(err)) << err;

    // Crash the backend; within a few probe periods the router's
    // stats must reflect it.
    backend.reset();
    ::unlink(opts.unixPath.c_str());
    bool down = false;
    for (int i = 0; i < 100 && !down; ++i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
        down = !router.snapshot().backends[0].healthy;
    }
    EXPECT_TRUE(down);
    ::unlink(ropts.unixPath.c_str());
}

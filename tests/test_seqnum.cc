/**
 * @file
 * Tests for the sequence-number ordering baseline (Kim et al.,
 * Section 8.1): functional correctness (a total per-channel order
 * subsumes the required partial order), credit-throttled
 * performance between Fence and OrderLight, and deadlock-freedom
 * of the credit management.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

class SeqNumCorrectness
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SeqNumCorrectness, MatchesGoldenAndReference)
{
    RunOptions opts;
    opts.workload = GetParam();
    opts.mode = OrderingMode::SeqNum;
    opts.elements = 1ull << 16;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.correct) << r.why;
    EXPECT_EQ(r.metrics.olPackets, 0u);
    EXPECT_EQ(r.metrics.fenceCount, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SeqNumCorrectness,
    ::testing::ValuesIn(workloadNames()),
    [](const auto &info) { return info.param; });

TEST(SeqNum, LandsBetweenFenceAndOrderLight)
{
    // At large TS OrderLight's phases are long; SeqNum's credit
    // round trip and total-order issue fall behind, while still
    // beating the fence baseline.
    auto exec = [](OrderingMode mode) {
        RunOptions opts;
        opts.workload = "Add";
        opts.mode = mode;
        opts.tsBytes = 1024;
        opts.elements = 1ull << 18;
        opts.verify = false;
        return runWorkload(opts).metrics.execMs;
    };
    double fence = exec(OrderingMode::Fence);
    double seq = exec(OrderingMode::SeqNum);
    double ol = exec(OrderingMode::OrderLight);
    EXPECT_LT(seq, fence);
    EXPECT_LT(ol, seq);
}

TEST(SeqNum, TighterCreditsThrottleHarder)
{
    auto exec = [](std::uint32_t credits) {
        SystemConfig base;
        base.seqNumCredits = credits;
        RunOptions opts;
        opts.workload = "Add";
        opts.mode = OrderingMode::SeqNum;
        opts.elements = 1ull << 17;
        opts.verify = false;
        opts.base = base;
        return runWorkload(opts).metrics.execMs;
    };
    EXPECT_GT(exec(4), exec(32))
        << "fewer reorder-buffer credits must cost performance";
}

TEST(SeqNum, CompletesUnderMinimalCredits)
{
    // Deadlock-freedom at the pathological end of the sweep.
    SystemConfig base;
    base.seqNumCredits = 1;
    RunOptions opts;
    opts.workload = "Copy";
    opts.mode = OrderingMode::SeqNum;
    opts.elements = 1ull << 14;
    opts.base = base;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.correct) << r.why;
}

TEST(SeqNumDeath, OversizedCreditsAreRejected)
{
    SystemConfig cfg;
    cfg.orderingMode = OrderingMode::SeqNum;
    cfg.seqNumCredits = cfg.readQueueSize + 1;
    EXPECT_DEATH(cfg.validate(), "seqNumCredits");
}

} // namespace
} // namespace olight

/**
 * @file
 * Serving-subsystem tests: JSON request parser, protocol
 * validation, the LRU result cache, and full daemon round-trips
 * over real sockets (Unix-domain and loopback TCP) — including the
 * multi-client stress run that is the TSan target (`ctest -R
 * serve_tsan`). Every suite here is named Serve* so the aggregate
 * sanitizer entry picks it up by filter.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <ftw.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/limits.hh"
#include "serve/admission.hh"
#include "serve/cache.hh"
#include "serve/json_in.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace olight;
using namespace olight::serve;

// ---------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------

TEST(ServeJson, ParsesScalarsAndNesting)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"a":1,"b":-2.5,"c":"x\nA","d":[true,false,null],)"
        R"("e":{"f":[1,2,3]}})",
        v, err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.0);
    EXPECT_DOUBLE_EQ(v.find("b")->number, -2.5);
    EXPECT_EQ(v.find("c")->string, "x\nA");
    ASSERT_TRUE(v.find("d")->isArray());
    EXPECT_EQ(v.find("d")->array.size(), 3u);
    EXPECT_TRUE(v.find("d")->array[2].isNull());
    EXPECT_EQ(v.find("e")->find("f")->array.size(), 3u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    const char *bad[] = {
        "",           "{",         "{\"a\":}",  "[1,2,]",
        "{\"a\":1}x", "nul",       "\"unterminated",
        "01",         "1e999",     "{\"a\" 1}",
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseJson(text, v, err)) << text;
        EXPECT_NE(err.find("offset"), std::string::npos) << err;
    }
}

TEST(ServeJson, BoundsNestingDepth)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(deep, v, err));
    EXPECT_NE(err.find("deep"), std::string::npos) << err;
}

TEST(ServeJson, AsU64IsStrict)
{
    JsonValue v;
    std::string err;
    std::uint64_t out = 0;
    ASSERT_TRUE(parseJson("[42, -1, 2.5, 1e3]", v, err)) << err;
    EXPECT_TRUE(v.array[0].asU64(out));
    EXPECT_EQ(out, 42u);
    EXPECT_FALSE(v.array[1].asU64(out)); // negative
    EXPECT_FALSE(v.array[2].asU64(out)); // fractional
    EXPECT_TRUE(v.array[3].asU64(out));  // 1000, integral
    EXPECT_EQ(out, 1000u);
}

// ---------------------------------------------------------------
// Protocol parse + validation
// ---------------------------------------------------------------

TEST(ServeProtocol, ParsesRunRequest)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(
        R"({"cmd":"run","id":7,"workload":"Triad","elements":4096,)"
        R"("mode":"fence","ts":512,"bmf":8,"verify":true})",
        req, err))
        << err;
    EXPECT_EQ(req.cmd, Cmd::Run);
    EXPECT_EQ(req.id, "7");
    EXPECT_EQ(req.run.workload, "Triad");
    EXPECT_EQ(req.run.elements, 4096u);
    EXPECT_EQ(req.run.mode, OrderingMode::Fence);
    EXPECT_EQ(req.run.tsBytes, 512u);
    EXPECT_EQ(req.run.bmf, 8u);
    EXPECT_TRUE(req.run.verify);
}

TEST(ServeProtocol, ParsesSweepRequest)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(
        R"({"cmd":"sweep","workloads":["Copy","Add"],)"
        R"("modes":["fence","orderlight"],"ts":[128,256],)"
        R"("bmf":[16],"elements":4096,"jobs":2})",
        req, err))
        << err;
    EXPECT_EQ(req.cmd, Cmd::Sweep);
    EXPECT_EQ(req.sweep.workloads.size(), 2u);
    EXPECT_EQ(req.sweep.modes.size(), 2u);
    EXPECT_EQ(req.sweep.tsSizes.size(), 2u);
    EXPECT_EQ(req.sweep.points(), 8u);
    EXPECT_EQ(req.sweep.jobs, 2u);
    EXPECT_FALSE(req.sweep.verify); // wire default: off
}

struct BadCase
{
    const char *line;
    const char *code;
};

TEST(ServeProtocol, RejectsBadRequestsWithStructuredCodes)
{
    const BadCase cases[] = {
        {"not json", "bad_json"},
        {"{\"no_cmd\":1}", "bad_request"},
        {R"({"cmd":"frobnicate"})", "unknown_cmd"},
        {R"({"cmd":"run","workload":"NoSuchWorkload"})",
         "bad_request"},
        {R"({"cmd":"run","mode":"telepathy"})", "bad_request"},
        {R"({"cmd":"run","elements":0})", "limit_exceeded"},
        {R"({"cmd":"run","elements":999999999999})",
         "limit_exceeded"},
        {R"({"cmd":"sweep","jobs":100000})", "limit_exceeded"},
        {R"({"cmd":"sweep","workloads":[]})", "limit_exceeded"},
        {R"({"cmd":"run","surprise_field":1})", "bad_request"},
        {R"({"cmd":"run","elements":"lots"})", "bad_request"},
    };
    for (const BadCase &c : cases) {
        Request req;
        std::string err;
        EXPECT_FALSE(parseRequest(c.line, req, err)) << c.line;
        EXPECT_NE(err.find("\"ok\":false"), std::string::npos)
            << err;
        EXPECT_NE(err.find(c.code), std::string::npos)
            << c.line << " -> " << err;
        // Every error reply must itself be valid JSON.
        JsonValue v;
        std::string jerr;
        EXPECT_TRUE(parseJson(err, v, jerr)) << err;
    }
}

TEST(ServeProtocol, ErrorReplyCarriesRetryAfter)
{
    std::string r = errorReply("\"abc\"", "busy", "full", 250);
    EXPECT_EQ(r, "{\"ok\":false,\"id\":\"abc\",\"error\":"
                 "{\"code\":\"busy\",\"message\":\"full\","
                 "\"retry_after_ms\":250}}");
    EXPECT_EQ(errorReply("", "bad_json", "x"),
              "{\"ok\":false,\"error\":{\"code\":\"bad_json\","
              "\"message\":\"x\"}}");
}

TEST(ServeProtocol, SharedLimitsMatchCliBounds)
{
    std::string why;
    EXPECT_TRUE(limits::checkRequest(1, 1, 1, why));
    EXPECT_FALSE(
        limits::checkRequest(limits::kMaxElements + 1, 1, 1, why));
    EXPECT_NE(why.find("exceeds"), std::string::npos);
    EXPECT_FALSE(
        limits::checkRequest(1, limits::kMaxJobs + 1, 1, why));
    EXPECT_FALSE(limits::checkRequest(
        1, 1, limits::kMaxSweepPoints + 1, why));
    EXPECT_FALSE(limits::checkRequest(0, 1, 1, why));
    EXPECT_FALSE(limits::checkRequest(1, 1, 0, why));
}

TEST(ServeProtocol, ParsesClientIdentityAndCpuHost)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest(
        R"({"cmd":"run","workload":"Copy","elements":4096,)"
        R"("client":"tenant-a","cpu_host":true})",
        req, err))
        << err;
    EXPECT_EQ(req.client, "tenant-a");
    EXPECT_TRUE(req.cpuHost);

    // The identity never reaches the fingerprint: two tenants
    // asking the same question share one cache entry.
    Request other;
    ASSERT_TRUE(parseRequest(
        R"({"cmd":"run","workload":"Copy","elements":4096,)"
        R"("client":"tenant-b","cpu_host":true})",
        other, err))
        << err;
    EXPECT_EQ(fingerprint(req.run), fingerprint(other.run));
}

// ---------------------------------------------------------------
// Per-client fair admission
// ---------------------------------------------------------------

TEST(ServeAdmission, GlobalBoundStillRejectsBusy)
{
    Admission a(2, 2);
    EXPECT_EQ(a.tryAdmit("x"), Admission::Verdict::Admitted);
    EXPECT_EQ(a.tryAdmit("y"), Admission::Verdict::Admitted);
    EXPECT_EQ(a.tryAdmit("z"), Admission::Verdict::RejectedBusy);
    a.release("x");
    EXPECT_EQ(a.tryAdmit("z"), Admission::Verdict::Admitted);

    Admission::Stats s = a.stats();
    EXPECT_EQ(s.inflight, 2u);
    EXPECT_EQ(s.peakInflight, 2u);
    EXPECT_EQ(s.busyRejected, 1u);
    EXPECT_EQ(s.fairnessRejected, 0u);
    EXPECT_EQ(s.activeClients, 2u);
}

TEST(ServeAdmission, ClientShareCapsAHotTenant)
{
    // 4 slots, 2 per client: a hot tenant stalls at 2 while a
    // second tenant's slots stay reachable.
    Admission a(4, 2);
    EXPECT_EQ(a.tryAdmit("hot"), Admission::Verdict::Admitted);
    EXPECT_EQ(a.tryAdmit("hot"), Admission::Verdict::Admitted);
    EXPECT_EQ(a.tryAdmit("hot"),
              Admission::Verdict::RejectedShare);
    EXPECT_EQ(a.tryAdmit("cold"), Admission::Verdict::Admitted);
    EXPECT_EQ(a.tryAdmit("cold"), Admission::Verdict::Admitted);
    // All 4 slots now held: the global bound outranks the share
    // check (a full house is `busy`, not a fairness complaint).
    EXPECT_EQ(a.tryAdmit("cold"), Admission::Verdict::RejectedBusy);
    EXPECT_EQ(a.stats().fairnessRejected, 1u);
    EXPECT_EQ(a.stats().busyRejected, 1u);

    // Releases reopen the client's share, and a fully released
    // client leaves the active set.
    a.release("hot");
    EXPECT_EQ(a.tryAdmit("hot"), Admission::Verdict::Admitted);
    a.release("cold");
    a.release("cold");
    EXPECT_EQ(a.stats().activeClients, 1u);
}

TEST(ServeAdmission, DefaultShareIsHalfTheLimitRoundedUp)
{
    EXPECT_EQ(Admission(4, 0).clientShare(), 2u);
    EXPECT_EQ(Admission(5, 0).clientShare(), 3u);
    EXPECT_EQ(Admission(1, 0).clientShare(), 1u);
    // An explicit share can never exceed the global limit.
    EXPECT_EQ(Admission(4, 99).clientShare(), 4u);
}

// ---------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------

TEST(ServeCache, HitRefreshesRecencyAndEvictsLru)
{
    ResultCache cache(2);
    std::string body;
    EXPECT_FALSE(cache.get(1, body));
    cache.put(1, "one");
    cache.put(2, "two");
    ASSERT_TRUE(cache.get(1, body)); // 1 now most recent
    EXPECT_EQ(body, "one");
    cache.put(3, "three"); // evicts 2, the LRU entry
    EXPECT_FALSE(cache.get(2, body));
    EXPECT_TRUE(cache.get(1, body));
    EXPECT_TRUE(cache.get(3, body));

    ResultCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.hits, 3u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.bytes, std::string("one").size() +
                           std::string("three").size());
}

TEST(ServeCache, OverwriteReplacesBody)
{
    ResultCache cache(4);
    cache.put(9, "old");
    cache.put(9, "new-longer");
    std::string body;
    ASSERT_TRUE(cache.get(9, body));
    EXPECT_EQ(body, "new-longer");
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().bytes, std::string("new-longer").size());
}

TEST(ServeCache, ZeroCapacityDisables)
{
    ResultCache cache(0);
    cache.put(1, "x");
    std::string body;
    EXPECT_FALSE(cache.get(1, body));
    EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------
// Live daemon round-trips
// ---------------------------------------------------------------

namespace
{

/** A blocking request/reply client over one connection. */
class Client
{
  public:
    static Client overUnix(const std::string &path)
    {
        std::string err;
        Client c;
        c.fd_ = connectUnix(path, err);
        EXPECT_TRUE(c.fd_.valid()) << err;
        return c;
    }

    static Client overTcp(std::uint16_t port)
    {
        std::string err;
        Client c;
        c.fd_ = connectTcp("127.0.0.1", port, err);
        EXPECT_TRUE(c.fd_.valid()) << err;
        return c;
    }

    std::string
    roundTrip(const std::string &request)
    {
        if (!writeAll(fd_.get(), request + "\n"))
            return "";
        std::string reply;
        if (readLine(fd_.get(), reply, carry_) != ReadStatus::Line)
            return "";
        return reply;
    }

  private:
    Fd fd_;
    std::string carry_;
};

/** Starts a daemon on a unique Unix socket; tears down on exit. */
class ServeServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = "/tmp/olight_test_" + std::to_string(::getpid()) +
                "_" + std::to_string(counter_++) + ".sock";
        ServeOptions opts;
        opts.unixPath = path_;
        opts.jobs = 2;
        server_ = std::make_unique<Server>(opts);
        std::string err;
        ASSERT_TRUE(server_->start(err)) << err;
    }

    void
    TearDown() override
    {
        server_->requestDrain();
        server_->join();
        server_.reset();
        ::unlink(path_.c_str());
    }

    static int counter_;
    std::string path_;
    std::unique_ptr<Server> server_;
};

int ServeServerTest::counter_ = 0;

const char *kRunRequest =
    R"({"cmd":"run","workload":"Copy","elements":4096,)"
    R"("mode":"orderlight"})";

} // namespace

TEST_F(ServeServerTest, PingStatsDrain)
{
    Client c = Client::overUnix(path_);
    EXPECT_EQ(c.roundTrip(R"({"cmd":"ping","id":"x"})"),
              "{\"ok\":true,\"cmd\":\"ping\",\"id\":\"x\"}");

    std::string stats = c.roundTrip(R"({"cmd":"stats"})");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(stats, v, err)) << stats;
    EXPECT_TRUE(v.find("ok")->boolean);
    EXPECT_EQ(v.find("stats")->find("jobs")->number, 2.0);
    EXPECT_FALSE(v.find("stats")->find("draining")->boolean);

    std::string drain = c.roundTrip(R"({"cmd":"drain"})");
    EXPECT_NE(drain.find("\"draining\":true"), std::string::npos);
    server_->join(); // must return: drain request shuts us down
    EXPECT_TRUE(server_->snapshot().draining);
}

TEST_F(ServeServerTest, CacheHitIsByteIdentical)
{
    Client c = Client::overUnix(path_);
    std::string cold = c.roundTrip(kRunRequest);
    std::string warm = c.roundTrip(kRunRequest);
    ASSERT_NE(cold, "");
    EXPECT_NE(cold.find("\"ok\":true"), std::string::npos) << cold;
    EXPECT_NE(cold.find("\"cached\":false"), std::string::npos);
    EXPECT_NE(warm.find("\"cached\":true"), std::string::npos);

    // The envelopes differ ONLY in the cached token; the result
    // body (and fingerprint) must be byte-identical.
    std::string patched = cold;
    patched.replace(patched.find("\"cached\":false"),
                    std::string("\"cached\":false").size(),
                    "\"cached\":true");
    EXPECT_EQ(patched, warm);

    ServeSnapshot s = server_->snapshot();
    EXPECT_EQ(s.runsExecuted, 1u);
    EXPECT_EQ(s.cache.hits, 1u);
    EXPECT_EQ(s.cache.misses, 1u);
}

TEST_F(ServeServerTest, MalformedRequestsKeepServing)
{
    Client c = Client::overUnix(path_);
    std::string bad = c.roundTrip("this is not json");
    EXPECT_NE(bad.find("\"bad_json\""), std::string::npos) << bad;

    std::string oversized = c.roundTrip(
        R"({"cmd":"run","workload":"Copy","elements":999999999999})");
    EXPECT_NE(oversized.find("\"limit_exceeded\""),
              std::string::npos)
        << oversized;
    EXPECT_NE(oversized.find("exceeds"), std::string::npos);

    std::string unknown = c.roundTrip(
        R"({"cmd":"run","workload":"NoSuchWorkload"})");
    EXPECT_NE(unknown.find("\"bad_request\""), std::string::npos)
        << unknown;

    // The daemon is still alive and serving after all of that.
    EXPECT_NE(c.roundTrip(R"({"cmd":"ping"})")
                  .find("\"ok\":true"),
              std::string::npos);
    EXPECT_EQ(server_->snapshot().parseErrors, 3u);
}

TEST_F(ServeServerTest, SweepRequestReturnsRows)
{
    Client c = Client::overUnix(path_);
    std::string reply = c.roundTrip(
        R"({"cmd":"sweep","workloads":["Copy"],)"
        R"("modes":["fence","orderlight"],"ts":[256],"bmf":[16],)"
        R"("elements":4096})");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(reply, v, err)) << reply;
    EXPECT_TRUE(v.find("ok")->boolean);
    const JsonValue *result = v.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("points")->number, 2.0);
    ASSERT_EQ(result->find("rows")->array.size(), 2u);
    // Sweep rows carry the per-point config fingerprint.
    const JsonValue &row = result->find("rows")->array[0];
    EXPECT_TRUE(row.find("config_fingerprint")->isString());
    EXPECT_EQ(row.find("config_fingerprint")->string.substr(0, 2),
              "0x");
    EXPECT_EQ(server_->snapshot().sweepPointsDone, 2u);
}

TEST_F(ServeServerTest, TcpRoundTrip)
{
    ServeOptions opts;
    opts.tcpPort = 0; // ephemeral
    opts.jobs = 1;
    Server tcp(opts);
    std::string err;
    ASSERT_TRUE(tcp.start(err)) << err;
    ASSERT_NE(tcp.tcpPort(), 0);
    Client c = Client::overTcp(tcp.tcpPort());
    EXPECT_EQ(c.roundTrip(R"({"cmd":"ping"})"),
              "{\"ok\":true,\"cmd\":\"ping\"}");
    tcp.requestDrain();
    tcp.join();
}

TEST_F(ServeServerTest, MultiClientStress)
{
    // N threads x M requests, mixed valid (cache-heavy) and
    // malformed. Every request must get exactly one reply, and
    // every reply must be well-formed JSON. This is the serve_tsan
    // target: accept/session/pool/cache all contended at once.
    constexpr int kClients = 8;
    constexpr int kRequests = 20;
    std::atomic<int> ok{0}, badJson{0}, busy{0}, other{0},
        transport{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            Client c = Client::overUnix(path_);
            for (int i = 0; i < kRequests; ++i) {
                std::string request;
                switch ((t + i) % 4) {
                  case 0:
                  case 1:
                    request = kRunRequest;
                    break;
                  case 2:
                    request = R"({"cmd":"ping"})";
                    break;
                  default:
                    request = "garbage " + std::to_string(i);
                }
                std::string reply = c.roundTrip(request);
                if (reply.empty()) {
                    transport.fetch_add(1);
                    continue;
                }
                JsonValue v;
                std::string err;
                if (!parseJson(reply, v, err)) {
                    transport.fetch_add(1);
                    continue;
                }
                if (v.find("ok")->boolean) {
                    ok.fetch_add(1);
                    continue;
                }
                const std::string &code =
                    v.find("error")->find("code")->string;
                if (code == "bad_json")
                    badJson.fetch_add(1);
                else if (code == "busy")
                    busy.fetch_add(1); // admission backpressure
                else
                    other.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Every request got exactly one well-formed reply...
    EXPECT_EQ(transport.load(), 0);
    EXPECT_EQ(ok.load() + badJson.load() + busy.load() +
                  other.load(),
              kClients * kRequests);
    // ...the malformed quarter ((t+i)%4==3) got bad_json, valid
    // requests succeeded or bounced on the admission bound (which
    // identical concurrent cold misses can hit), nothing else.
    EXPECT_EQ(badJson.load(), kClients * kRequests / 4);
    EXPECT_EQ(other.load(), 0);

    ServeSnapshot s = server_->snapshot();
    EXPECT_EQ(s.requests, std::uint64_t(kClients * kRequests));
    EXPECT_EQ(s.replies, std::uint64_t(kClients * kRequests));
    EXPECT_EQ(s.busyRejected + s.fairnessRejected,
              std::uint64_t(busy.load()));
    EXPECT_GE(s.cache.hits + s.cache.misses, 1u);
    EXPECT_EQ(s.internalErrors, 0u);
}

TEST_F(ServeServerTest, StatsCarryTierAndFairnessCounters)
{
    Client c = Client::overUnix(path_);
    std::string stats = c.roundTrip(R"({"cmd":"stats"})");
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(stats, v, err)) << stats;
    const JsonValue *s = v.find("stats");
    ASSERT_NE(s, nullptr);
    // Fairness knobs and counters.
    EXPECT_EQ(s->find("client_share")->number, 2.0); // half of 4
    EXPECT_EQ(s->find("fairness_rejected")->number, 0.0);
    EXPECT_EQ(s->find("session_timeouts")->number, 0.0);
    EXPECT_EQ(s->find("active_clients")->number, 0.0);
    // Per-tier cache counters: memory always, disk off here.
    const JsonValue *cache = s->find("cache");
    ASSERT_NE(cache, nullptr);
    ASSERT_NE(cache->find("memory"), nullptr);
    EXPECT_EQ(cache->find("memory")->find("hits")->number, 0.0);
    ASSERT_NE(cache->find("disk"), nullptr);
    EXPECT_FALSE(cache->find("disk")->find("enabled")->boolean);
    EXPECT_EQ(cache->find("disk")->find("quarantined")->number,
              0.0);
}

namespace
{

int
removeCasFile(const char *path, const struct stat *, int,
              struct FTW *)
{
    return ::remove(path);
}

} // namespace

TEST_F(ServeServerTest, DiskTierServesAcrossRestartByteIdentical)
{
    const std::string cas =
        path_ + ".cas"; // unique per test instance
    std::string cold, warm;
    {
        ServeOptions opts;
        opts.unixPath = path_ + ".a";
        opts.jobs = 1;
        opts.casRoot = cas;
        Server first(opts);
        std::string err;
        ASSERT_TRUE(first.start(err)) << err;
        Client c = Client::overUnix(opts.unixPath);
        cold = c.roundTrip(kRunRequest);
        ASSERT_NE(cold.find("\"cached\":false"), std::string::npos)
            << cold;
        EXPECT_EQ(first.snapshot().disk.writes, 1u);
        ::unlink(opts.unixPath.c_str());
    } // daemon gone; memory tier gone with it

    {
        ServeOptions opts;
        opts.unixPath = path_ + ".b";
        opts.jobs = 1;
        opts.casRoot = cas;
        Server second(opts);
        std::string err;
        ASSERT_TRUE(second.start(err)) << err;
        Client c = Client::overUnix(opts.unixPath);
        warm = c.roundTrip(kRunRequest);
        ServeSnapshot s = second.snapshot();
        EXPECT_EQ(s.runsExecuted, 0u); // served, not re-simulated
        EXPECT_EQ(s.disk.hits, 1u);
        // The disk hit was promoted into the memory tier.
        EXPECT_EQ(s.cache.entries, 1u);
        ::unlink(opts.unixPath.c_str());
    }

    // Byte-identical across the restart, modulo the cached token.
    std::string patched = cold;
    patched.replace(patched.find("\"cached\":false"),
                    std::string("\"cached\":false").size(),
                    "\"cached\":true");
    EXPECT_EQ(patched, warm);
    ::nftw(cas.c_str(), removeCasFile, 16, FTW_DEPTH | FTW_PHYS);
}

TEST_F(ServeServerTest, HotTenantCannotStarveASecondTenant)
{
    // One worker, two slots, one-slot share: tenant A occupies its
    // whole share with a slow run, a second A request bounces on
    // fairness, while tenant B's request still admits and runs.
    ServeOptions opts;
    opts.unixPath = path_ + ".fair";
    opts.jobs = 1;
    opts.admitLimit = 2;
    opts.clientShare = 1;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;

    const std::string slow =
        R"({"cmd":"run","workload":"Hist","elements":262144,)"
        R"("mode":"fence","client":"a"})";
    std::thread holder([&] {
        Client c = Client::overUnix(opts.unixPath);
        std::string reply = c.roundTrip(slow);
        EXPECT_NE(reply.find("\"ok\":true"), std::string::npos)
            << reply;
    });
    // Wait until the slow run holds tenant A's slot.
    for (int i = 0; i < 200; ++i) {
        if (server.snapshot().inflight > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GT(server.snapshot().inflight, 0u);

    Client c2 = Client::overUnix(opts.unixPath);
    std::string rejected = c2.roundTrip(
        R"({"cmd":"run","workload":"Copy","elements":8192,)"
        R"("client":"a"})");
    EXPECT_NE(rejected.find("\"busy\""), std::string::npos)
        << rejected;
    EXPECT_NE(rejected.find("share"), std::string::npos)
        << rejected;
    EXPECT_NE(rejected.find("retry_after_ms"), std::string::npos);

    Client c3 = Client::overUnix(opts.unixPath);
    std::string admitted = c3.roundTrip(
        R"({"cmd":"run","workload":"Copy","elements":8192,)"
        R"("client":"b"})");
    EXPECT_NE(admitted.find("\"ok\":true"), std::string::npos)
        << admitted;

    holder.join();
    ServeSnapshot s = server.snapshot();
    EXPECT_GE(s.fairnessRejected, 1u);
    EXPECT_EQ(s.busyRejected, 0u);
    ::unlink(opts.unixPath.c_str());
}

/**
 * @file
 * SM-level behavioral tests through small full systems: fence-wait
 * magnitudes, OrderLight wait magnitudes, round-robin fairness
 * across warps, and the relationship between stall cycles and the
 * ordering primitive.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

RunResult
runAdd(OrderingMode mode, std::uint32_t ts = 256)
{
    RunOptions opts;
    opts.workload = "Add";
    opts.mode = mode;
    opts.tsBytes = ts;
    opts.elements = 1ull << 16;
    opts.verify = false;
    return runWorkload(opts);
}

TEST(SmBehavior, FenceWaitIsAFullRoundTrip)
{
    RunResult r = runAdd(OrderingMode::Fence);
    // Forward pipe latency alone is 220 core cycles; the fence also
    // waits for queue drain and the 40-cycle ack network.
    EXPECT_GT(r.metrics.waitPerFence, 220.0);
    EXPECT_LT(r.metrics.waitPerFence, 800.0)
        << "waits should be a round trip, not a pathology";
}

TEST(SmBehavior, OrderLightWaitIsCollectorDrainOnly)
{
    RunResult r = runAdd(OrderingMode::OrderLight);
    // The OrderLight gate waits only for the operand collector to
    // drain: base collect latency (4) + jitter (<8) + a few issue
    // slots — over an order of magnitude below the fence wait.
    EXPECT_LT(r.metrics.waitPerOl, 40.0);
    EXPECT_GT(r.metrics.waitPerOl, 0.0);
}

TEST(SmBehavior, StallCyclesScaleWithFenceCount)
{
    RunResult small_ts = runAdd(OrderingMode::Fence, 128);
    RunResult big_ts = runAdd(OrderingMode::Fence, 1024);
    // 8x fewer fences at 1/2 RB with roughly constant wait each.
    EXPECT_EQ(small_ts.metrics.fenceCount,
              8 * big_ts.metrics.fenceCount);
    EXPECT_GT(small_ts.metrics.stallCycles,
              4 * big_ts.metrics.stallCycles);
}

TEST(SmBehavior, OrderingPrimitiveCountsMatchStreams)
{
    for (auto mode :
         {OrderingMode::Fence, OrderingMode::OrderLight}) {
        RunResult r = runAdd(mode);
        EXPECT_EQ(r.metrics.orderingPrimitives(), r.orderPoints)
            << toString(mode)
            << ": every order point lowers to exactly one primitive";
    }
}

TEST(SmBehavior, AllWarpsMakeProgress)
{
    // 16 channels over 8 SMs x 2 warps: every channel's stream must
    // complete, and per-channel PIM command counts must be equal
    // (the kernels are balanced).
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Triad");
    w->build(cfg, 1ull << 15);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    sys.run();
    std::uint64_t first = sys.pimUnit(0).commandsExecuted();
    EXPECT_GT(first, 0u);
    for (std::uint16_t ch = 1; ch < cfg.numChannels; ++ch)
        EXPECT_EQ(sys.pimUnit(ch).commandsExecuted(), first)
            << "channel " << ch;
}

TEST(SmBehavior, NoneModeHasZeroOrderingStalls)
{
    RunResult r = runAdd(OrderingMode::None);
    EXPECT_EQ(r.metrics.stallCycles, 0u);
    EXPECT_EQ(r.metrics.orderingPrimitives(), 0u);
}

TEST(SmBehavior, OrderLightThroughputInsensitiveToWarpPacking)
{
    // The paper runs OrderLight with 2 warps/SM; packing all 16
    // channels onto fewer SMs halves issue bandwidth per warp and
    // must not deadlock (and should slow things down).
    SystemConfig base;
    base.warpsPerSm = 8;
    base.numSms = 2;
    RunOptions opts;
    opts.workload = "Add";
    opts.mode = OrderingMode::OrderLight;
    opts.elements = 1ull << 16;
    opts.verify = true;

    SystemConfig cfg = configFor(opts.mode, 256, 16);
    auto w = makeWorkload("Add");
    w->build(cfg, opts.elements);

    // Packed variant built manually.
    SystemConfig packed = cfg;
    packed.warpsPerSm = 8;
    packed.numSms = 2;
    System sys(packed);
    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    RunMetrics packed_m = sys.run();

    RunResult spread = runWorkload(opts);
    ASSERT_TRUE(spread.correct) << spread.why;
    EXPECT_GE(packed_m.execMs, spread.metrics.execMs)
        << "2 SMs cannot beat 8 SMs at equal work";
}

} // namespace
} // namespace olight

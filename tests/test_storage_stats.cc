/** @file Unit tests for SparseMemory, StatSet, Rng, and logging. */

#include <gtest/gtest.h>

#include <sstream>

#include "dram/storage.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace olight
{
namespace
{

TEST(SparseMemory, ZeroOnFirstTouch)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readFloat(0x1000), 0.0f);
    EXPECT_EQ(mem.readU32(0xdeadbe0), 0u);
    EXPECT_EQ(mem.numBlocks(), 0u);
}

TEST(SparseMemory, ReadWriteRoundTrip)
{
    SparseMemory mem;
    mem.writeFloat(0x40, 3.5f);
    EXPECT_EQ(mem.readFloat(0x40), 3.5f);
    mem.writeU32(0x44, 0xabcdef01u);
    EXPECT_EQ(mem.readU32(0x44), 0xabcdef01u);
    EXPECT_EQ(mem.readFloat(0x40), 3.5f);
}

TEST(SparseMemory, UnalignedCrossBlockAccess)
{
    SparseMemory mem;
    std::uint8_t data[100];
    for (int i = 0; i < 100; ++i)
        data[i] = std::uint8_t(i);
    mem.write(0x3e, data, 100); // crosses several 32 B blocks
    std::uint8_t out[100] = {};
    mem.read(0x3e, out, 100);
    EXPECT_EQ(std::memcmp(data, out, 100), 0);
    // Bytes around the region stay zero.
    std::uint8_t b;
    mem.read(0x3d, &b, 1);
    EXPECT_EQ(b, 0);
}

TEST(SparseMemory, BulkFloatHelpers)
{
    SparseMemory mem;
    std::vector<float> vals = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    mem.writeFloats(0x100, vals);
    EXPECT_EQ(mem.readFloats(0x100, 9), vals);
}

TEST(SparseMemoryDeath, UnalignedBlockPanics)
{
    SparseMemory mem;
    EXPECT_DEATH(mem.block(0x21), "unaligned");
}

TEST(StatSet, ScalarRegistrationIsStable)
{
    StatSet stats;
    Scalar &a = stats.scalar("x.count", "desc");
    a += 2.0;
    Scalar &b = stats.scalar("x.count");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 2.0);
    ++b;
    EXPECT_EQ(stats.findScalar("x.count")->value(), 3.0);
    EXPECT_EQ(stats.findScalar("missing"), nullptr);
}

TEST(StatSet, SumScalarsByPrefixSuffix)
{
    StatSet stats;
    stats.scalar("pim0.commands") += 10;
    stats.scalar("pim1.commands") += 5;
    stats.scalar("pim1.bytes") += 99;
    stats.scalar("mc0.commands") += 7;
    EXPECT_EQ(stats.sumScalars("pim", ".commands"), 15.0);
    EXPECT_EQ(stats.sumScalars("", ".commands"), 22.0);
    EXPECT_EQ(stats.sumScalars("pim", ".bytes"), 99.0);
}

TEST(StatSet, DistributionTracksMoments)
{
    StatSet stats;
    Distribution &d = stats.distribution("lat", "latency");
    d.sample(10);
    d.sample(30);
    d.sample(20);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.mean(), 20.0);
    EXPECT_EQ(d.minValue(), 10.0);
    EXPECT_EQ(d.maxValue(), 30.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(StatSet, DumpMentionsAllStats)
{
    StatSet stats;
    stats.scalar("alpha.count", "things") += 4;
    stats.distribution("beta.lat", "latencies").sample(2);
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("alpha.count"), std::string::npos);
    EXPECT_NE(os.str().find("beta.lat"), std::string::npos);
    EXPECT_NE(os.str().find("things"), std::string::npos);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(Rng, RangesAreBounded)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextRange(17), 17u);
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        float f = rng.nextFloat(-2.0f, 3.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Rng, JitterIsDeterministicAndBounded)
{
    for (std::uint64_t id = 0; id < 1000; ++id) {
        std::uint32_t j = jitter(5, id, 8);
        EXPECT_LT(j, 8u);
        EXPECT_EQ(j, jitter(5, id, 8));
    }
    EXPECT_EQ(jitter(5, 123, 0), 0u);
    // Jitter should actually vary across ids.
    bool varied = false;
    for (std::uint64_t id = 1; id < 100 && !varied; ++id)
        varied = jitter(5, id, 8) != jitter(5, 0, 8);
    EXPECT_TRUE(varied);
}

} // namespace
} // namespace olight

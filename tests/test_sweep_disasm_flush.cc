/**
 * @file
 * Tests for the sweep driver, the kernel disassembler, and the
 * pre-kernel coherence-flush model (Section 5.4).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/disasm.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

TEST(Sweep, RunsFullGridAndEmitsCsv)
{
    SweepSpec spec;
    spec.workloads = {"Scale", "Copy"};
    spec.modes = {OrderingMode::Fence, OrderingMode::OrderLight};
    spec.tsSizes = {128, 1024};
    spec.bmfs = {16};
    spec.elements = 1ull << 14;
    spec.verify = true;

    std::ostringstream progress;
    auto rows = runSweep(spec, [&progress](const SweepRow &row) {
        progress << progressLine(row) << "\n";
    });
    ASSERT_EQ(rows.size(), spec.points());
    ASSERT_EQ(rows.size(), 8u);

    for (const auto &row : rows) {
        EXPECT_TRUE(row.correct)
            << row.workload << "/" << toString(row.mode);
        EXPECT_GT(row.metrics.pimCommands, 0u);
    }
    // Row-major order: workload outermost, bmf innermost.
    EXPECT_EQ(rows[0].workload, "Scale");
    EXPECT_EQ(rows[0].mode, OrderingMode::Fence);
    EXPECT_EQ(rows[0].tsBytes, 128u);
    EXPECT_EQ(rows[1].tsBytes, 1024u);
    EXPECT_EQ(rows[2].mode, OrderingMode::OrderLight);
    EXPECT_EQ(rows[4].workload, "Copy");

    std::ostringstream csv;
    writeCsv(csv, rows);
    std::string text = csv.str();
    EXPECT_NE(text.find("workload,mode,ts_bytes"),
              std::string::npos);
    // Header + 8 data rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 9);
    EXPECT_NE(text.find("Scale,Fence,128,16,"), std::string::npos);
    EXPECT_NE(progress.str().find("[ok]"), std::string::npos);
}

TEST(Sweep, GpuBaselineIsSharedAcrossModes)
{
    SweepSpec spec;
    spec.workloads = {"Scale"};
    spec.modes = {OrderingMode::Fence, OrderingMode::OrderLight};
    spec.tsSizes = {256};
    spec.elements = 1ull << 14;
    spec.gpuBaseline = true;
    auto rows = runSweep(spec);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_GT(rows[0].gpuMs, 0.0);
    EXPECT_EQ(rows[0].gpuMs, rows[1].gpuMs);
}

TEST(Disasm, RendersEveryInstructionKind)
{
    SystemConfig cfg;
    AddressMap map(cfg);

    PimInstr load = PimInstr::load(3, 0x1000, 2);
    EXPECT_NE(disassemble(load).find("PIM_LOAD"), std::string::npos);
    EXPECT_NE(disassemble(load).find("ts[3]"), std::string::npos);
    EXPECT_NE(disassemble(load, &map).find("b0"), std::string::npos);

    PimInstr store = PimInstr::store(1, 0x2000, 0);
    EXPECT_NE(disassemble(store).find("PIM_STORE"),
              std::string::npos);

    PimInstr fetch =
        PimInstr::fetchOp(AluOp::Fma, 0, 1, 0x40, 0, 2.0f);
    std::string f = disassemble(fetch);
    EXPECT_NE(f.find("PIM_FETCH.Fma"), std::string::npos);
    EXPECT_NE(f.find("2"), std::string::npos);

    PimInstr compute = PimInstr::compute(AluOp::Relu, 5, 6);
    EXPECT_NE(disassemble(compute).find("PIM_OP.Relu"),
              std::string::npos);

    PimInstr op = PimInstr::orderPoint(7);
    EXPECT_NE(disassemble(op).find("ORDER_POINT grp7"),
              std::string::npos);
    PimInstr dual = PimInstr::orderPointDual(1, 2);
    EXPECT_NE(disassemble(dual).find("grp1+grp2"),
              std::string::npos);
}

TEST(Disasm, DumpKernelRespectsLimit)
{
    SystemConfig cfg;
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 14);
    std::ostringstream os;
    dumpKernel(os, w->streams(), w->map(), 3);
    std::string text = os.str();
    EXPECT_NE(text.find("; channel 0:"), std::string::npos);
    EXPECT_NE(text.find("; channel 15:"), std::string::npos);
    EXPECT_NE(text.find("... ("), std::string::npos);
    EXPECT_NE(text.find("PIM_LOAD"), std::string::npos);
}

TEST(CoherenceFlush, RunsBeforeTheKernel)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 15);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    sys.setCoherenceFlush(w->hostTraffic());
    sys.run();

    EXPECT_GT(sys.flushDoneTick(), 0u);
    EXPECT_GT(sys.pimFinishTick(), sys.flushDoneTick())
        << "the PIM kernel must start only after the flush";
    std::string why;
    EXPECT_TRUE(w->check(sys.mem(), why)) << why;
}

TEST(CoherenceFlush, OverheadAmortizesWithKernelSize)
{
    auto flush_fraction = [](std::uint64_t elements) {
        SystemConfig cfg =
            configFor(OrderingMode::OrderLight, 256, 16);
        auto w = makeWorkload("Scale");
        w->build(cfg, elements);
        System sys(cfg);
        w->initMemory(sys.mem());
        sys.loadPimKernel(w->streams());
        sys.setCoherenceFlush(w->hostTraffic());
        RunMetrics m = sys.run();
        return double(sys.flushDoneTick()) / double(m.finishTick);
    };
    // The flush is a host-bandwidth pass over the data while the
    // kernel is a PIM-bandwidth pass, so its share shrinks only via
    // fixed overheads — but it must never grow with size.
    EXPECT_LE(flush_fraction(1ull << 18),
              flush_fraction(1ull << 15) + 0.05);
}

TEST(CoherenceFlushDeath, ExclusiveWithHostTraffic)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 14);
    System sys(cfg);
    sys.setHostTraffic(w->hostTraffic());
    EXPECT_DEATH(sys.setCoherenceFlush(w->hostTraffic()),
                 "one or the other");
}

} // namespace
} // namespace olight

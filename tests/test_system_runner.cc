/**
 * @file
 * System- and runner-level tests: per-mode SM provisioning,
 * determinism, the host-execution baseline, CGA vs FGA arbitration,
 * and PIM-unit functional execution through the full stack.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

TEST(Runner, ConfigForAppliesPaperProvisioning)
{
    SystemConfig fence =
        configFor(OrderingMode::Fence, 256, 16);
    EXPECT_EQ(fence.warpsPerSm, 8u);
    EXPECT_EQ(fence.numSms, 2u);
    SystemConfig ol =
        configFor(OrderingMode::OrderLight, 512, 8);
    EXPECT_EQ(ol.warpsPerSm, 2u);
    EXPECT_EQ(ol.numSms, 8u);
    EXPECT_EQ(ol.tsBytes, 512u);
    EXPECT_EQ(ol.bmf, 8u);
}

TEST(Runner, DeterministicAcrossRuns)
{
    RunOptions opts;
    opts.workload = "Triad";
    opts.elements = 1ull << 15;
    opts.verify = false;
    RunResult a = runWorkload(opts);
    RunResult b = runWorkload(opts);
    EXPECT_EQ(a.metrics.finishTick, b.metrics.finishTick);
    EXPECT_EQ(a.metrics.pimCommands, b.metrics.pimCommands);
    EXPECT_EQ(a.metrics.stallCycles, b.metrics.stallCycles);
    EXPECT_EQ(a.metrics.olPackets, b.metrics.olPackets);
}

TEST(Runner, VerificationCatchesUnorderedExecution)
{
    RunOptions opts;
    opts.workload = "Daxpy";
    opts.elements = 1ull << 16;
    opts.mode = OrderingMode::None;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.verified);
    EXPECT_FALSE(r.correct)
        << "with no ordering primitive the pipe reordering must "
           "corrupt at least one element";
    EXPECT_FALSE(r.why.empty());
}

TEST(Runner, GpuBaselineIsPositiveAndDeterministic)
{
    double a = gpuBaselineMs("Add", 1ull << 17);
    double b = gpuBaselineMs("Add", 1ull << 17);
    EXPECT_GT(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b);
    double big = gpuBaselineMs("Add", 1ull << 19);
    EXPECT_GT(big, a) << "4x the data should take longer";
}

TEST(System, HostOnlyRunReachesHighRowLocality)
{
    SystemConfig cfg;
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 17);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.setHostTraffic(w->hostTraffic());
    RunMetrics m = sys.run();
    EXPECT_GT(m.hostRequests, 0u);
    EXPECT_GT(m.rowHits, m.rowMisses * 20)
        << "bank-staggered host streams should be row-friendly";
    EXPECT_EQ(m.pimCommands, 0u);
}

TEST(System, PimRunMovesRealData)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Copy");
    w->build(cfg, 1ull << 14);
    System sys(cfg);
    w->initMemory(sys.mem());

    // Destination region starts zeroed.
    const PimArray &src = w->arrays()[0];
    const PimArray &dst = w->arrays()[1];
    EXPECT_EQ(sys.mem().readFloat(dst.base), 0.0f);

    sys.loadPimKernel(w->streams());
    sys.run();
    EXPECT_EQ(sys.mem().readFloat(dst.base),
              sys.mem().readFloat(src.base));
    EXPECT_GT(sys.pimFinishTick(), 0u);
}

TEST(System, CgaDeniesHostMemoryDuringPim)
{
    struct Result
    {
        Tick hostFirstDone;
        Tick pimFinish;
    };
    auto run = [](ArbitrationGranularity arb) {
        SystemConfig base;
        base.arbitration = arb;
        SystemConfig cfg =
            configFor(OrderingMode::OrderLight, 256, 16, base);
        auto w = makeWorkload("Add");
        w->build(cfg, 1ull << 16);
        System sys(cfg);
        w->initMemory(sys.mem());
        sys.loadPimKernel(w->streams());
        sys.setHostTraffic(w->hostTraffic());
        sys.run();
        return Result{sys.hostStream().firstDoneTick(),
                      sys.pimFinishTick()};
    };

    Result fga = run(ArbitrationGranularity::Fine);
    Result cga = run(ArbitrationGranularity::Coarse);
    // Figure 2a: under CGA the host sees no memory service until the
    // PIM computation completes; under FGA requests interleave.
    EXPECT_LT(fga.hostFirstDone, cga.hostFirstDone);
    EXPECT_LT(fga.hostFirstDone, fga.pimFinish)
        << "FGA must service host requests while PIM is running";
    EXPECT_GT(cga.hostFirstDone, cga.pimFinish)
        << "CGA must not service host requests before PIM finishes";
}

TEST(System, StatsExposeComponentCounters)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Scale");
    w->build(cfg, 1ull << 14);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    sys.run();

    const StatSet &stats = sys.stats();
    EXPECT_GT(stats.sumScalars("pim", ".commands"), 0.0);
    EXPECT_GT(stats.sumScalars("mc", ".olPackets"), 0.0);
    EXPECT_GT(stats.sumScalars("l2s", ".olMerges"), 0.0);
    EXPECT_GT(stats.sumScalars("l2s", ".olCopies"), 0.0);
    EXPECT_GT(stats.sumScalars("sm", ".collected"), 0.0);
    // Copies = merges * number of sub-partitions.
    EXPECT_EQ(stats.sumScalars("l2s", ".olCopies"),
              stats.sumScalars("l2s", ".olMerges") *
                  cfg.l2SubPartitions);
}

TEST(SystemDeath, DoubleRunIsRejected)
{
    SystemConfig cfg = configFor(OrderingMode::OrderLight, 256, 16);
    auto w = makeWorkload("Scale");
    w->build(cfg, 1ull << 13);
    System sys(cfg);
    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    sys.run();
    EXPECT_DEATH(sys.run(), "only be called once");
}

} // namespace
} // namespace olight

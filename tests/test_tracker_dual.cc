/** @file Unit tests for dual-group (Extended) ordering barriers. */

#include <gtest/gtest.h>

#include "memctrl/ordering_tracker.hh"

namespace olight
{
namespace
{

TEST(DualTracker, BlocksBothGroupsUntilBothDrain)
{
    OrderingTracker t(4);
    auto a0 = t.onRequestArrive(0);
    auto b0 = t.onRequestArrive(1);
    t.onDualOrderLightArrive(0, 1);
    auto a1 = t.onRequestArrive(0);
    auto b1 = t.onRequestArrive(1);

    EXPECT_TRUE(t.eligible(0, a0));
    EXPECT_TRUE(t.eligible(1, b0));
    EXPECT_FALSE(t.eligible(0, a1));
    EXPECT_FALSE(t.eligible(1, b1));

    // Draining only group 0 must NOT release group-0's post-barrier
    // requests: the cross dependency on group 1 still holds.
    t.onScheduled(0, a0);
    EXPECT_FALSE(t.eligible(0, a1))
        << "post-barrier group-0 request must wait for group 1 too";
    EXPECT_FALSE(t.eligible(1, b1));

    t.onScheduled(1, b0);
    EXPECT_TRUE(t.eligible(0, a1));
    EXPECT_TRUE(t.eligible(1, b1));
}

TEST(DualTracker, UnrelatedGroupIsUnaffected)
{
    OrderingTracker t(4);
    t.onRequestArrive(0);
    t.onRequestArrive(1);
    t.onDualOrderLightArrive(0, 1);
    auto other = t.onRequestArrive(2);
    EXPECT_TRUE(t.eligible(2, other));
}

TEST(DualTracker, SameGroupDualDegeneratesToSingle)
{
    OrderingTracker t(4);
    auto a0 = t.onRequestArrive(0);
    t.onDualOrderLightArrive(0, 0);
    auto a1 = t.onRequestArrive(0);
    // One dual packet on the same group must act like one barrier,
    // not two nested ones.
    EXPECT_FALSE(t.eligible(0, a1));
    t.onScheduled(0, a0);
    EXPECT_TRUE(t.eligible(0, a1));
}

TEST(DualTracker, SequentialDualBarriersCompose)
{
    OrderingTracker t(4);
    auto a0 = t.onRequestArrive(0);
    t.onDualOrderLightArrive(0, 1);
    auto b1 = t.onRequestArrive(1);
    t.onDualOrderLightArrive(0, 1);
    auto a2 = t.onRequestArrive(0);

    EXPECT_FALSE(t.eligible(1, b1)) << "waits for a0 via barrier 1";
    EXPECT_FALSE(t.eligible(0, a2));

    t.onScheduled(0, a0);
    EXPECT_TRUE(t.eligible(1, b1));
    EXPECT_FALSE(t.eligible(0, a2)) << "waits for b1 via barrier 2";
    t.onScheduled(1, b1);
    EXPECT_TRUE(t.eligible(0, a2));
}

TEST(DualTracker, DualWithEmptyGroupsIsFree)
{
    OrderingTracker t(4);
    t.onDualOrderLightArrive(0, 1);
    auto a = t.onRequestArrive(0);
    auto b = t.onRequestArrive(1);
    EXPECT_TRUE(t.eligible(0, a));
    EXPECT_TRUE(t.eligible(1, b));
}

} // namespace
} // namespace olight

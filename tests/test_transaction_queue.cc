/** @file Unit tests for the MC transaction queue and FR-FCFS pick. */

#include <gtest/gtest.h>

#include "memctrl/transaction_queue.hh"

namespace olight
{
namespace
{

Transaction
txn(std::uint64_t id, std::uint16_t bank, std::uint32_t row,
    std::uint32_t epoch = 0)
{
    Transaction t;
    t.pkt.id = id;
    t.pkt.instr.type = PimOpType::PimLoad;
    t.bank = bank;
    t.row = row;
    t.epoch = epoch;
    return t;
}

const auto anyEligible = [](const Transaction &) { return true; };

TEST(TransactionQueue, CapacityViaCredits)
{
    TransactionQueue q(2);
    EXPECT_TRUE(q.reserve());
    EXPECT_TRUE(q.reserve());
    EXPECT_FALSE(q.reserve()) << "third credit must be refused";
    q.push(txn(1, 0, 0));
    q.push(txn(2, 0, 0));
    q.pop(0);
    EXPECT_TRUE(q.reserve()) << "pop returns the credit";
}

TEST(TransactionQueue, PicksOldestRowHitFirst)
{
    TransactionQueue q(8);
    for (int i = 0; i < 4; ++i)
        q.reserve();
    q.push(txn(0, 0, 5));  // row miss (open row will be 7)
    q.push(txn(1, 0, 7));  // hit
    q.push(txn(2, 0, 7));  // hit, younger
    q.push(txn(3, 1, 9));  // other bank, miss

    auto row_hit = [](std::uint16_t bank, std::uint32_t row) {
        return bank == 0 && row == 7;
    };
    auto idx = q.pick(anyEligible, row_hit);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(q.at(*idx).pkt.id, 1u) << "oldest row hit wins";
}

TEST(TransactionQueue, FallsBackToOldestWithoutHits)
{
    TransactionQueue q(8);
    for (int i = 0; i < 3; ++i)
        q.reserve();
    q.push(txn(7, 0, 1));
    q.push(txn(8, 0, 2));
    q.push(txn(9, 0, 3));
    auto idx = q.pick(anyEligible, [](std::uint16_t, std::uint32_t) {
        return false;
    });
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(q.at(*idx).pkt.id, 7u);
}

TEST(TransactionQueue, EligibilityFiltersCandidates)
{
    TransactionQueue q(8);
    for (int i = 0; i < 3; ++i)
        q.reserve();
    q.push(txn(1, 0, 0, /*epoch=*/1));
    q.push(txn(2, 0, 0, /*epoch=*/0));
    q.push(txn(3, 0, 0, /*epoch=*/1));

    auto epoch0 = [](const Transaction &t) { return t.epoch == 0; };
    auto idx = q.pick(epoch0, [](std::uint16_t, std::uint32_t) {
        return true;
    });
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(q.at(*idx).pkt.id, 2u);

    auto none = [](const Transaction &) { return false; };
    EXPECT_FALSE(q.pick(none, [](std::uint16_t, std::uint32_t) {
                      return true;
                  }).has_value());
}

TEST(TransactionQueue, ComputeCommandsNeverRowHit)
{
    TransactionQueue q(8);
    q.reserve();
    q.reserve();
    Transaction compute;
    compute.pkt.id = 1;
    compute.pkt.instr.type = PimOpType::PimCompute;
    q.push(std::move(compute));
    q.push(txn(2, 0, 0));
    // The row-hit predicate must never be consulted for compute
    // commands (they carry no address); a genuine row hit elsewhere
    // still wins FR-FCFS over the older compute entry.
    bool asked_for_compute = false;
    auto idx = q.pick(anyEligible,
                      [&](std::uint16_t bank, std::uint32_t) {
                          if (bank != 0)
                              asked_for_compute = true;
                          return true;
                      });
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(q.at(*idx).pkt.id, 2u);
    EXPECT_FALSE(asked_for_compute);

    // Without any row hit, the compute command wins as oldest.
    auto oldest = q.pick(anyEligible,
                         [](std::uint16_t, std::uint32_t) {
                             return false;
                         });
    ASSERT_TRUE(oldest.has_value());
    EXPECT_EQ(q.at(*oldest).pkt.id, 1u);
}

TEST(TransactionQueue, PopRemovesByIndex)
{
    TransactionQueue q(8);
    for (int i = 0; i < 3; ++i)
        q.reserve();
    q.push(txn(1, 0, 0));
    q.push(txn(2, 0, 0));
    q.push(txn(3, 0, 0));
    Transaction t = q.pop(1);
    EXPECT_EQ(t.pkt.id, 2u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(0).pkt.id, 1u);
    EXPECT_EQ(q.at(1).pkt.id, 3u);
}

TEST(TransactionQueueDeath, OverflowAndBadPopPanic)
{
    TransactionQueue q(1);
    q.reserve();
    q.push(txn(1, 0, 0));
    EXPECT_DEATH(q.push(txn(2, 0, 0)), "overflow");
    EXPECT_DEATH(q.pop(5), "out of range");
}

} // namespace
} // namespace olight

/**
 * @file
 * Unit tests for the Louvre MC-side version tracker
 * (memctrl/version_tracker.hh): complete-prefix window scheduling,
 * release-carried counts, dual-release cross deps and their
 * permanent pruning, and the degenerate same-group dual.
 */

#include <gtest/gtest.h>

#include "memctrl/version_tracker.hh"

namespace olight
{
namespace
{

TEST(VersionTracker, WindowZeroIsOpenFromTheStart)
{
    VersionTracker vt(2);
    // No release yet: window 0 requests schedule freely (there is no
    // earlier window to wait for), window 1 requests must hold.
    EXPECT_TRUE(vt.eligible(0, 0));
    EXPECT_FALSE(vt.eligible(0, 1));
    EXPECT_EQ(vt.released(0), 0u);
    EXPECT_EQ(vt.complete(0), 0u);
}

TEST(VersionTracker, ReleaseAloneCompletesAnEmptyWindow)
{
    VersionTracker vt(1);
    vt.onRelease(0, 0); // ordering point with no requests before it
    EXPECT_EQ(vt.released(0), 1u);
    EXPECT_EQ(vt.complete(0), 1u);
    EXPECT_TRUE(vt.eligible(0, 1));
}

TEST(VersionTracker, WindowCompletesWhenAllExpectedScheduled)
{
    VersionTracker vt(1);
    // Two requests of window 0 arrive and schedule before the
    // release does (louvre admits them — no drain).
    EXPECT_TRUE(vt.eligible(0, 0));
    vt.onScheduled(0, 0);
    vt.onScheduled(0, 0);
    EXPECT_FALSE(vt.eligible(0, 1)) << "release not yet seen";

    vt.onRelease(0, 2);
    EXPECT_EQ(vt.complete(0), 1u)
        << "count satisfied at release time";
    EXPECT_TRUE(vt.eligible(0, 1));
}

TEST(VersionTracker, ElderWindowHoldsYoungerScheduling)
{
    VersionTracker vt(1);
    vt.onRelease(0, 2); // window 0: two requests expected
    EXPECT_FALSE(vt.eligible(0, 1));
    vt.onScheduled(0, 0);
    EXPECT_FALSE(vt.eligible(0, 1)) << "one of two still missing";
    vt.onScheduled(0, 0);
    EXPECT_TRUE(vt.eligible(0, 1));
    EXPECT_EQ(vt.complete(0), 1u);
}

TEST(VersionTracker, CompletionAdvancesAcrossMultipleWindows)
{
    VersionTracker vt(1);
    vt.onRelease(0, 1); // window 0 expects 1
    vt.onRelease(0, 1); // window 1 expects 1
    // Window 1's request arrives first — admitted (scheduled counts
    // accumulate) but the prefix cannot advance past window 0.
    EXPECT_FALSE(vt.eligible(0, 1));
    vt.onScheduled(0, 0);
    EXPECT_EQ(vt.complete(0), 1u);
    EXPECT_TRUE(vt.eligible(0, 1));
    vt.onScheduled(0, 1);
    EXPECT_EQ(vt.complete(0), 2u);
    EXPECT_TRUE(vt.eligible(0, 2));
}

TEST(VersionTracker, DualReleaseCrossOrdersBothGroups)
{
    VersionTracker vt(2);
    // Group 0 window 0 has one pending request; the dual release
    // closes window 0 of both groups.
    vt.onDualRelease(0, 1, 1, 0);
    EXPECT_EQ(vt.released(0), 1u);
    EXPECT_EQ(vt.released(1), 1u);
    // Group 1's window 0 was empty, so its prefix advanced — but its
    // post-release window must also wait for group 0's pre-release
    // window (the cross dep), which still has a request in flight.
    EXPECT_EQ(vt.complete(1), 1u);
    EXPECT_FALSE(vt.eligible(1, 1))
        << "acquire must see group 0's pre-release requests done";
    // Pre-release group-0 traffic is not blocked by the dep.
    EXPECT_TRUE(vt.eligible(0, 0));

    vt.onScheduled(0, 0);
    EXPECT_EQ(vt.complete(0), 1u);
    EXPECT_TRUE(vt.eligible(1, 1)) << "dep satisfied and pruned";
    EXPECT_TRUE(vt.eligible(0, 1));
}

TEST(VersionTracker, SatisfiedCrossDepsPrunePermanently)
{
    VersionTracker vt(2);
    vt.onDualRelease(0, 0, 1, 0); // both windows empty -> complete
    EXPECT_TRUE(vt.eligible(0, 1));
    EXPECT_TRUE(vt.eligible(1, 1));
    // After pruning, later same-group traffic stays eligible even as
    // new windows open on the other group.
    vt.onRelease(1, 0);
    EXPECT_TRUE(vt.eligible(0, 1));
}

TEST(VersionTracker, DegenerateSameGroupDualClosesTwoWindows)
{
    VersionTracker vt(1);
    vt.onScheduled(0, 0);
    vt.onDualRelease(0, 1, 0, 0);
    // Folded into two single releases: windows 0 (one request,
    // already scheduled) and 1 (empty) both complete.
    EXPECT_EQ(vt.released(0), 2u);
    EXPECT_EQ(vt.complete(0), 2u);
    EXPECT_TRUE(vt.eligible(0, 2));
}

} // namespace
} // namespace olight

/**
 * @file
 * Parameterized functional-correctness sweep: every workload of
 * Table 2 runs under both real ordering primitives (Fence and
 * OrderLight) and must produce results that are bit-identical to the
 * golden program-order execution AND match the workload's
 * independent mathematical reference. This is the central invariant
 * of the reproduction — ordering enforcement is sufficient at every
 * reordering point of the modeled pipe.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

struct Param
{
    std::string workload;
    OrderingMode mode;
};

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    return info.param.workload + "_" + toString(info.param.mode);
}

class WorkloadCorrectness : public ::testing::TestWithParam<Param>
{
};

TEST_P(WorkloadCorrectness, MatchesGoldenAndReference)
{
    RunOptions opts;
    opts.workload = GetParam().workload;
    opts.mode = GetParam().mode;
    opts.elements = 1ull << 16; // small but multi-tile
    opts.tsBytes = 256;
    opts.bmf = 16;

    RunResult r = runWorkload(opts);
    ASSERT_TRUE(r.verified);
    EXPECT_TRUE(r.correct) << r.why;
    EXPECT_GT(r.metrics.pimCommands, 0u);
    EXPECT_GT(r.orderPoints, 0u);
    if (GetParam().mode == OrderingMode::Fence) {
        EXPECT_GT(r.metrics.fenceCount, 0u);
        EXPECT_EQ(r.metrics.olPackets, 0u);
    } else {
        EXPECT_GT(r.metrics.olPackets, 0u);
        EXPECT_EQ(r.metrics.fenceCount, 0u);
    }
}

std::vector<Param>
allParams()
{
    std::vector<Param> params;
    for (const auto &name : workloadNames()) {
        params.push_back({name, OrderingMode::OrderLight});
        params.push_back({name, OrderingMode::Fence});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCorrectness,
                         ::testing::ValuesIn(allParams()),
                         paramName);

/** TS-size sweep on representative kernels (OrderLight). */
class TsSweepCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint32_t>>
{
};

TEST_P(TsSweepCorrectness, CorrectAtEveryTsSize)
{
    RunOptions opts;
    opts.workload = std::get<0>(GetParam());
    opts.tsBytes = std::get<1>(GetParam());
    opts.mode = OrderingMode::OrderLight;
    opts.elements = 1ull << 15;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.correct) << r.why;
}

INSTANTIATE_TEST_SUITE_P(
    TsSizes, TsSweepCorrectness,
    ::testing::Combine(::testing::Values("Add", "Scale", "Hist",
                                         "Gen_Fil", "FC"),
                       ::testing::Values(128u, 256u, 512u, 1024u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_ts" +
               std::to_string(std::get<1>(info.param));
    });

/** BMF sweep: the lane-parallel model stays correct at 4x/8x/16x. */
class BmfSweepCorrectness
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BmfSweepCorrectness, CorrectAtEveryBmf)
{
    for (const char *name : {"Add", "KMeans"}) {
        RunOptions opts;
        opts.workload = name;
        opts.bmf = GetParam();
        opts.elements = 1ull << 15;
        RunResult r = runWorkload(opts);
        EXPECT_TRUE(r.correct) << name << ": " << r.why;
    }
}

INSTANTIATE_TEST_SUITE_P(Bmf, BmfSweepCorrectness,
                         ::testing::Values(4u, 8u, 16u));

/**
 * The transactional family's structural contract: every transaction
 * is a read-set / conflict-window / write-set triple, and each part
 * closes with an ordering point before the next part (or the next
 * transaction) touches the same TS slots.
 */
TEST(TxnKernels, ConflictWindowsAreOrderPointBracketed)
{
    SystemConfig cfg;
    auto w = makeWorkload("Txn_Xfer");
    w->build(cfg, 1ull << 14);
    for (const auto &stream : w->streams()) {
        // Per transaction: 2 loads, OP, 2 computes, OP, 2 stores, OP.
        ASSERT_EQ(stream.size() % 9, 0u);
        ASSERT_GT(stream.size(), 0u);
        for (std::size_t t = 0; t < stream.size(); t += 9) {
            EXPECT_EQ(stream[t + 0].type, PimOpType::PimLoad);
            EXPECT_EQ(stream[t + 1].type, PimOpType::PimLoad);
            EXPECT_EQ(stream[t + 2].type, PimOpType::OrderPoint);
            EXPECT_EQ(stream[t + 3].type, PimOpType::PimCompute);
            EXPECT_EQ(stream[t + 4].type, PimOpType::PimCompute);
            EXPECT_EQ(stream[t + 5].type, PimOpType::OrderPoint);
            EXPECT_EQ(stream[t + 6].type, PimOpType::PimStore);
            EXPECT_EQ(stream[t + 7].type, PimOpType::PimStore);
            EXPECT_EQ(stream[t + 8].type, PimOpType::OrderPoint);
        }
    }

    // The cross-group commit variant publishes through dual-group
    // ordering points on both window edges.
    auto log = makeWorkload("Txn_Log");
    log->build(cfg, 1ull << 14);
    std::uint64_t duals = 0;
    for (const auto &instr : log->streams()[0])
        if (instr.secondOrderGroup() >= 0)
            ++duals;
    EXPECT_GT(duals, 0u);
}

/**
 * The conflict windows are genuinely ordering-sensitive: with no
 * enforcement the simulated pipe loses updates (detected bit-exactly
 * by the independent checker) and the in-pipe oracle flags commit-
 * order violations. This pins that the txn/bitwise families actually
 * exercise the hazard the enforcing backends must close.
 */
TEST(TxnKernels, ConflictWindowsAreSensitiveWithoutEnforcement)
{
    for (const char *name : {"Txn_Xfer", "Bit_Xnor"}) {
        RunOptions opts;
        opts.workload = name;
        opts.mode = OrderingMode::None;
        opts.elements = 1ull << 14;
        RunResult r = runWorkload(opts);
        ASSERT_TRUE(r.verified) << name;
        EXPECT_FALSE(r.correct)
            << name << " should lose updates under mode=none";
    }
}

} // namespace
} // namespace olight

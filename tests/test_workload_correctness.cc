/**
 * @file
 * Parameterized functional-correctness sweep: every workload of
 * Table 2 runs under both real ordering primitives (Fence and
 * OrderLight) and must produce results that are bit-identical to the
 * golden program-order execution AND match the workload's
 * independent mathematical reference. This is the central invariant
 * of the reproduction — ordering enforcement is sufficient at every
 * reordering point of the modeled pipe.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace
{

struct Param
{
    std::string workload;
    OrderingMode mode;
};

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    return info.param.workload + "_" + toString(info.param.mode);
}

class WorkloadCorrectness : public ::testing::TestWithParam<Param>
{
};

TEST_P(WorkloadCorrectness, MatchesGoldenAndReference)
{
    RunOptions opts;
    opts.workload = GetParam().workload;
    opts.mode = GetParam().mode;
    opts.elements = 1ull << 16; // small but multi-tile
    opts.tsBytes = 256;
    opts.bmf = 16;

    RunResult r = runWorkload(opts);
    ASSERT_TRUE(r.verified);
    EXPECT_TRUE(r.correct) << r.why;
    EXPECT_GT(r.metrics.pimCommands, 0u);
    EXPECT_GT(r.orderPoints, 0u);
    if (GetParam().mode == OrderingMode::Fence) {
        EXPECT_GT(r.metrics.fenceCount, 0u);
        EXPECT_EQ(r.metrics.olPackets, 0u);
    } else {
        EXPECT_GT(r.metrics.olPackets, 0u);
        EXPECT_EQ(r.metrics.fenceCount, 0u);
    }
}

std::vector<Param>
allParams()
{
    std::vector<Param> params;
    for (const auto &name : workloadNames()) {
        params.push_back({name, OrderingMode::OrderLight});
        params.push_back({name, OrderingMode::Fence});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCorrectness,
                         ::testing::ValuesIn(allParams()),
                         paramName);

/** TS-size sweep on representative kernels (OrderLight). */
class TsSweepCorrectness
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint32_t>>
{
};

TEST_P(TsSweepCorrectness, CorrectAtEveryTsSize)
{
    RunOptions opts;
    opts.workload = std::get<0>(GetParam());
    opts.tsBytes = std::get<1>(GetParam());
    opts.mode = OrderingMode::OrderLight;
    opts.elements = 1ull << 15;
    RunResult r = runWorkload(opts);
    EXPECT_TRUE(r.correct) << r.why;
}

INSTANTIATE_TEST_SUITE_P(
    TsSizes, TsSweepCorrectness,
    ::testing::Combine(::testing::Values("Add", "Scale", "Hist",
                                         "Gen_Fil", "FC"),
                       ::testing::Values(128u, 256u, 512u, 1024u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_ts" +
               std::to_string(std::get<1>(info.param));
    });

/** BMF sweep: the lane-parallel model stays correct at 4x/8x/16x. */
class BmfSweepCorrectness
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BmfSweepCorrectness, CorrectAtEveryBmf)
{
    for (const char *name : {"Add", "KMeans"}) {
        RunOptions opts;
        opts.workload = name;
        opts.bmf = GetParam();
        opts.elements = 1ull << 15;
        RunResult r = runWorkload(opts);
        EXPECT_TRUE(r.correct) << name << ": " << r.why;
    }
}

INSTANTIATE_TEST_SUITE_P(Bmf, BmfSweepCorrectness,
                         ::testing::Values(4u, 8u, 16u));

} // namespace
} // namespace olight

/**
 * @file
 * Structural tests on generated PIM kernels: instruction mixes,
 * ordering-point scaling with TS size (the Figure 12 right axis),
 * per-channel balance, and Table 2 metadata.
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

namespace olight
{
namespace
{

struct StreamShape
{
    std::uint64_t mem = 0;
    std::uint64_t compute = 0;
    std::uint64_t orderPoints = 0;

    double
    orderRate() const
    {
        return double(orderPoints) / double(mem + compute);
    }
};

StreamShape
shapeOf(const std::string &name, std::uint32_t tsBytes)
{
    SystemConfig cfg;
    cfg.tsBytes = tsBytes;
    auto w = makeWorkload(name);
    w->build(cfg, 1ull << 16);
    StreamShape s;
    for (const auto &stream : w->streams()) {
        for (const auto &instr : stream) {
            if (instr.type == PimOpType::OrderPoint)
                ++s.orderPoints;
            else if (instr.type == PimOpType::PimCompute)
                ++s.compute;
            else
                ++s.mem;
        }
    }
    return s;
}

TEST(WorkloadStreams, Table2Metadata)
{
    EXPECT_EQ(workloadNames().size(), 16u);
    for (const auto &name : workloadNames()) {
        auto w = makeWorkload(name);
        WorkloadInfo info = w->info();
        EXPECT_EQ(info.name, name);
        EXPECT_FALSE(info.ratio.empty());
        EXPECT_FALSE(info.description.empty());
    }
    EXPECT_FALSE(makeWorkload("Scale")->info().multiStructure);
    EXPECT_TRUE(makeWorkload("Add")->info().multiStructure);
    EXPECT_FALSE(makeWorkload("FC")->info().multiStructure);
    EXPECT_TRUE(makeWorkload("Hist")->info().multiStructure);
}

TEST(WorkloadStreams, CopyHasNoComputeInstructions)
{
    StreamShape s = shapeOf("Copy", 256);
    EXPECT_EQ(s.compute, 0u) << "Copy is 0:2 in Table 2";
    StreamShape scale = shapeOf("Scale", 256);
    EXPECT_EQ(scale.compute, 0u)
        << "Scale folds its multiply into a fetch-op";
}

TEST(WorkloadStreams, AddUsesThreePhasesPerTile)
{
    SystemConfig cfg; // TS 256 B -> 8 slots
    auto w = makeWorkload("Add");
    w->build(cfg, 1ull << 16);
    // Per tile: 8 loads, OL, 8 fetch-adds, OL, 8 stores, OL.
    const auto &stream = w->streams()[0];
    ASSERT_GE(stream.size(), 27u);
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(stream[k].type, PimOpType::PimLoad);
    EXPECT_EQ(stream[8].type, PimOpType::OrderPoint);
    for (int k = 9; k < 17; ++k)
        EXPECT_EQ(stream[k].type, PimOpType::PimFetchOp);
    EXPECT_EQ(stream[17].type, PimOpType::OrderPoint);
    for (int k = 18; k < 26; ++k)
        EXPECT_EQ(stream[k].type, PimOpType::PimStore);
    EXPECT_EQ(stream[26].type, PimOpType::OrderPoint);
}

TEST(WorkloadStreams, OrderingRateHalvesWithTsForStreamKernels)
{
    for (const auto &name : streamWorkloadNames()) {
        double r128 = shapeOf(name, 128).orderRate();
        double r256 = shapeOf(name, 256).orderRate();
        double r1024 = shapeOf(name, 1024).orderRate();
        EXPECT_NEAR(r256 / r128, 0.5, 0.05) << name;
        EXPECT_LT(r1024, r128 / 4.0) << name;
    }
}

TEST(WorkloadStreams, FcKmeansGenFilRatesAreTsInsensitive)
{
    // Figure 12: "the number of ordering primitives issued per PIM
    // instruction decreases with TS at a much slower rate for these
    // kernels" (FC 33%, KMeans 22%, Gen_Fil 0% vs ~50% for others).
    for (const char *name : {"FC", "KMeans", "Gen_Fil"}) {
        double r128 = shapeOf(name, 128).orderRate();
        double r1024 = shapeOf(name, 1024).orderRate();
        EXPECT_GT(r1024, r128 * 0.6)
            << name << " should barely depend on TS";
    }
    double gf128 = shapeOf("Gen_Fil", 128).orderRate();
    double gf1024 = shapeOf("Gen_Fil", 1024).orderRate();
    EXPECT_DOUBLE_EQ(gf128, gf1024)
        << "Gen_Fil works at fixed 128 B granularity";
}

TEST(WorkloadStreams, EveryChannelGetsWork)
{
    SystemConfig cfg;
    for (const auto &name : workloadNames()) {
        auto w = makeWorkload(name);
        w->build(cfg, 1ull << 16);
        ASSERT_EQ(w->streams().size(), cfg.numChannels);
        std::size_t first = w->streams()[0].size();
        EXPECT_GT(first, 0u) << name;
        for (const auto &stream : w->streams())
            EXPECT_EQ(stream.size(), first)
                << name << ": channels must be balanced";
    }
}

TEST(WorkloadStreams, AllCommandAddressesAreLaneZeroAndOwnChannel)
{
    SystemConfig cfg;
    for (const char *name : {"Add", "Gen_Fil", "Hist"}) {
        auto w = makeWorkload(name);
        w->build(cfg, 1ull << 15);
        for (std::uint16_t ch = 0; ch < cfg.numChannels; ++ch) {
            for (const auto &instr : w->streams()[ch]) {
                if (!instr.isMemAccess())
                    continue;
                DramCoord c = w->map().decode(instr.addr);
                ASSERT_EQ(c.channel, ch) << name;
                ASSERT_EQ(c.lane, 0) << name;
            }
        }
    }
}

TEST(WorkloadStreams, GenFilUsesIrregularRows)
{
    SystemConfig cfg;
    auto w = makeWorkload("Gen_Fil");
    w->build(cfg, 1ull << 21); // 8 MB genome, many rows
    // Count distinct transitions between successive fetch rows; an
    // irregular pattern switches rows for nearly every candidate.
    const auto &stream = w->streams()[0];
    std::int64_t last_row = -1;
    std::uint64_t fetches = 0, switches = 0;
    for (const auto &instr : stream) {
        if (instr.type != PimOpType::PimFetchOp)
            continue;
        auto c = w->map().decode(instr.addr);
        std::int64_t key = (std::int64_t(c.bank) << 32) | c.row;
        if (key != last_row)
            ++switches;
        last_row = key;
        ++fetches;
    }
    EXPECT_GT(switches, fetches / 8)
        << "candidates should land in scattered rows";
}

} // namespace
} // namespace olight

/** @file Shared flag-parsing helpers for the command-line tools. */

#include "cli_common.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/limits.hh"
#include "sim/thread_pool.hh"

namespace olight
{
namespace cli
{

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
tryParseNumber(const std::string &value, std::uint64_t &out)
{
    try {
        std::size_t used = 0;
        std::uint64_t v = std::stoull(value, &used);
        if (used != value.size())
            return false;
        out = v;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

std::uint64_t
parseNumber(const char *tool, const std::string &flag,
            const std::string &value)
{
    std::uint64_t out = 0;
    if (!tryParseNumber(value, out)) {
        std::cerr << tool << ": " << flag
                  << " needs a number, got: " << value << "\n";
        std::exit(2);
    }
    return out;
}

bool
tryParseMode(const std::string &text, bool allowSeqnum,
             OrderingMode &out)
{
    return modeFromName(text, allowSeqnum, out);
}

OrderingMode
parseMode(const std::string &text)
{
    OrderingMode mode;
    if (!tryParseMode(text, true, mode)) {
        std::cerr << "unknown mode: " << text << "\n";
        std::exit(2);
    }
    return mode;
}

const char *
modeName(OrderingMode mode)
{
    return modeFlagName(mode);
}

bool
tryParseFamily(const std::string &text, WorkloadFamily &out)
{
    return familyFromName(text, out);
}

WorkloadFamily
parseFamily(const std::string &text)
{
    WorkloadFamily family;
    if (!tryParseFamily(text, family)) {
        std::cerr << "unknown family: " << text
                  << " (stream, app, txn, bitwise)\n";
        std::exit(2);
    }
    return family;
}

void
enforceLimits(const char *tool, std::uint64_t elements,
              std::uint64_t jobs, std::uint64_t points)
{
    std::string why;
    if (!limits::checkRequest(elements, jobs, points, why)) {
        std::cerr << tool << ": " << why << "\n";
        std::exit(2);
    }
}

unsigned
parseSimJobs(const char *tool, const std::string &value)
{
    std::uint64_t n = parseNumber(tool, "--sim-jobs", value);
    if (n == 0)
        return ThreadPool::defaultThreads();
    return unsigned(n);
}

} // namespace cli
} // namespace olight

/**
 * @file
 * Flag-parsing helpers shared by the command-line tools
 * (olight_cli, olight_sweep, olight_litmus).
 *
 * All three drivers parse the same vocabulary — ordering modes,
 * strict unsigned numbers, comma-separated lists — but surface
 * errors in tool-specific wording. The helpers therefore come in
 * two flavours: non-fatal `tryParse*` primitives for drivers that
 * compose their own diagnostics, and fatal variants that print the
 * canonical `<tool>: <flag> needs a number` message and exit 2.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "workloads/registry.hh"

namespace olight
{
namespace cli
{

/** Split "a,b,c" into items, dropping empty fields. */
std::vector<std::string> splitCsv(const std::string &text);

/**
 * Strict unsigned parse: the whole string must be numeric.
 * Returns false (leaving @p out untouched) on any trailing junk,
 * overflow, or empty input instead of throwing.
 */
bool tryParseNumber(const std::string &value, std::uint64_t &out);

/**
 * Fatal variant for drivers with uniform diagnostics: on bad input
 * prints "<tool>: <flag> needs a number, got: <value>" to stderr
 * and exits 2, so a typo like `--ts x` names the offending flag.
 */
std::uint64_t parseNumber(const char *tool, const std::string &flag,
                          const std::string &value);

/**
 * Parse an ordering-mode name. SeqNum is the paper's strongest
 * baseline and only meaningful for full workloads, so drivers that
 * cannot honour it (the litmus harness) pass allowSeqnum = false.
 */
bool tryParseMode(const std::string &text, bool allowSeqnum,
                  OrderingMode &out);

/** Fatal variant: prints "unknown mode: <text>" and exits 2. */
OrderingMode parseMode(const std::string &text);

/** Canonical lowercase flag spelling of a mode (none/fence/...). */
const char *modeName(OrderingMode mode);

/** Parse a workload-family name (stream/app/txn/bitwise). */
bool tryParseFamily(const std::string &text, WorkloadFamily &out);

/** Fatal variant: prints "unknown family: <text> (stream, app,
 *  txn, bitwise)" and exits 2. */
WorkloadFamily parseFamily(const std::string &text);

/**
 * Enforce the shared request-size bounds (core/limits.hh) the
 * serving daemon also applies: on violation prints
 * "<tool>: <why>" to stderr and exits 2 — a clean diagnostic
 * instead of an OOM or an olight_fatal deep inside the simulator.
 * @p points is the sweep grid size (1 for single-run tools).
 */
void enforceLimits(const char *tool, std::uint64_t elements,
                   std::uint64_t jobs, std::uint64_t points);

/**
 * Parse a `--sim-jobs` value the same way in every driver: strict
 * number (fatal with the tool's uniform diagnostic otherwise), with
 * 0 resolved to the machine's worker-thread default. The returned
 * count feeds ExecPolicy::simJobs — results are bit-identical for
 * every value, so the flag is pure throughput tuning.
 */
unsigned parseSimJobs(const char *tool, const std::string &value);

} // namespace cli
} // namespace olight

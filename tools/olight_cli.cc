/**
 * @file
 * Command-line driver for the OrderLight simulator.
 *
 * Runs any registered workload at any experiment point and reports
 * metrics, optionally with full statistics, energy breakdown,
 * verification, the GPU host baseline, and a CSV packet trace.
 *
 *   olight_cli --workload Add --mode orderlight --ts 256 --bmf 16
 *   olight_cli --workload Gen_Fil --mode fence --verify --energy
 *   olight_cli --list
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/disasm.hh"
#include "core/energy.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "sim/thread_pool.hh"
#include "workloads/reference.hh"
#include "workloads/registry.hh"

using namespace olight;

namespace
{

void
usage()
{
    std::cout <<
        "usage: olight_cli [options]\n"
        "  --workload NAME   Table 2 kernel (default Add)\n"
        "  --mode MODE       none | fence | orderlight | seqnum\n"
        "  --ts BYTES        temporary storage per lane (default 256)\n"
        "  --bmf N           bandwidth multiplication factor (16)\n"
        "  --elements N      fp32 elements per array (default 2^18)\n"
        "  --channels N      memory channels (default 16)\n"
        "  --cpu-host        use the OoO-CPU host preset\n"
        "  --verify          golden + mathematical verification\n"
        "  --gpu-baseline    also time GPU host execution\n"
        "  --stats           dump all statistics\n"
        "  --energy          print the energy breakdown\n"
        "  --jobs N          worker threads for verification and\n"
        "                    baseline runs (0 = auto, default 1)\n"
        "  --trace FILE      write a CSV packet trace\n"
        "  --dump-kernel N   disassemble N instrs per channel\n"
        "  --flush           model the pre-kernel coherence flush\n"
        "  --list            list workloads and exit\n";
}

OrderingMode
parseMode(const std::string &text)
{
    if (text == "none")
        return OrderingMode::None;
    if (text == "fence")
        return OrderingMode::Fence;
    if (text == "orderlight")
        return OrderingMode::OrderLight;
    if (text == "seqnum")
        return OrderingMode::SeqNum;
    std::cerr << "unknown mode: " << text << "\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "Add";
    OrderingMode mode = OrderingMode::OrderLight;
    std::uint32_t ts = 256, bmf = 16, channels = 16;
    std::uint64_t elements = 1ull << 18;
    bool cpu_host = false, verify = false, gpu_baseline = false;
    bool dump_stats = false, energy = false, flush = false;
    std::size_t dump_kernel = 0;
    unsigned jobs = 1;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next();
        else if (arg == "--mode")
            mode = parseMode(next());
        else if (arg == "--ts")
            ts = std::uint32_t(std::stoul(next()));
        else if (arg == "--bmf")
            bmf = std::uint32_t(std::stoul(next()));
        else if (arg == "--elements")
            elements = std::stoull(next());
        else if (arg == "--channels")
            channels = std::uint32_t(std::stoul(next()));
        else if (arg == "--cpu-host")
            cpu_host = true;
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--gpu-baseline")
            gpu_baseline = true;
        else if (arg == "--stats")
            dump_stats = true;
        else if (arg == "--energy")
            energy = true;
        else if (arg == "--jobs" || arg == "-j")
            jobs = unsigned(std::stoul(next()));
        else if (arg == "--trace")
            trace_path = next();
        else if (arg == "--dump-kernel")
            dump_kernel = std::stoull(next());
        else if (arg == "--flush")
            flush = true;
        else if (arg == "--list") {
            for (const auto &name : workloadNames()) {
                auto w = makeWorkload(name);
                WorkloadInfo info = w->info();
                std::cout << name << "\t" << info.ratio << "\t"
                          << info.description << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }

    SystemConfig base = cpu_host ? cpuHostBase() : SystemConfig{};
    base.numChannels = channels;
    SystemConfig cfg = configFor(mode, ts, bmf, base);
    cfg.print(std::cout);

    auto w = makeWorkload(workload);
    w->build(cfg, elements);

    System sys(cfg);
    std::ofstream trace_file;
    if (!trace_path.empty()) {
        trace_file.open(trace_path);
        if (!trace_file) {
            std::cerr << "cannot open trace file " << trace_path
                      << "\n";
            return 2;
        }
        sys.enableTrace(trace_file);
    }

    if (dump_kernel > 0)
        dumpKernel(std::cout, w->streams(), w->map(), dump_kernel);

    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    if (flush)
        sys.setCoherenceFlush(w->hostTraffic());

    // With --jobs > 1, the golden-reference execution and the GPU
    // host baseline are independent of the main simulation, so they
    // run on pool workers while sys.run() occupies this thread.
    if (jobs == 0)
        jobs = ThreadPool::defaultThreads();
    ThreadPool pool(jobs > 1 ? jobs - 1 : 1);
    bool overlap = jobs > 1;

    SparseMemory golden;
    bool golden_ready = false;
    auto run_golden = [&] {
        w->initMemory(golden);
        runGolden(cfg, w->map(), w->streams(), golden);
        golden_ready = true;
    };
    double gpu_ms = 0.0;
    auto run_gpu = [&] {
        gpu_ms = gpuBaselineMs(workload, elements, base);
    };
    if (overlap) {
        if (verify)
            pool.submit(run_golden);
        if (gpu_baseline)
            pool.submit(run_gpu);
    }

    RunMetrics m = sys.run();
    if (overlap)
        pool.wait();

    std::cout << "\n" << workload << " / " << toString(mode) << " / "
              << tsLabel(cfg) << " / BMF " << bmf << ":\n  ";
    m.print(std::cout);
    std::cout << "\n";
    if (flush)
        std::cout << "  coherence flush: "
                  << ticksToMs(sys.flushDoneTick()) << " ms\n";

    if (verify) {
        if (!golden_ready)
            run_golden();
        std::string why;
        bool ok = true;
        for (const auto &arr : w->arrays()) {
            if (!compareArray(sys.mem(), golden, arr, why)) {
                ok = false;
                break;
            }
        }
        if (ok && !w->check(sys.mem(), why))
            ok = false;
        std::cout << "  verification: "
                  << (ok ? "bit-exact" : ("FAILED: " + why)) << "\n";
        if (!ok)
            return 1;
    }

    if (gpu_baseline) {
        if (!overlap)
            run_gpu();
        std::cout << "  GPU host execution: " << gpu_ms
                  << " ms (PIM speedup "
                  << gpu_ms / m.execMs << "x)\n";
    }

    if (energy) {
        EnergyBreakdown e = computeEnergy(sys.stats(), cfg);
        std::cout << "  ";
        e.print(std::cout);
        std::cout << "\n";
    }

    if (dump_stats) {
        std::cout << "\n";
        sys.stats().dump(std::cout);
    }
    return 0;
}

/**
 * @file
 * Command-line driver for the OrderLight simulator.
 *
 * Runs any registered workload at any experiment point and reports
 * metrics, optionally with full statistics, energy breakdown,
 * verification, the GPU host baseline, and a CSV packet trace.
 *
 *   olight_cli --workload Add --mode orderlight --ts 256 --bmf 16
 *   olight_cli --workload Gen_Fil --mode fence --verify --energy
 *   olight_cli --list
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "cli_common.hh"
#include "core/disasm.hh"
#include "core/energy.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "sim/thread_pool.hh"
#include "workloads/reference.hh"
#include "workloads/registry.hh"

using namespace olight;

namespace
{

void
usage()
{
    std::cout <<
        "usage: olight_cli [options]\n"
        "  --workload NAME   Table 2 kernel (default Add)\n"
        "  --mode MODE       " + modeNamesJoined(true, '|') + "\n"
        "  --ts BYTES        temporary storage per lane (default 256)\n"
        "  --bmf N           bandwidth multiplication factor (16)\n"
        "  --elements N      fp32 elements per array (default 2^18)\n"
        "  --channels N      memory channels (default 16)\n"
        "  --cpu-host        use the OoO-CPU host preset\n"
        "  --verify          golden + mathematical verification and\n"
        "                    the in-pipe ordering oracle\n"
        "  --gpu-baseline    also time GPU host execution\n"
        "  --stats           dump all statistics\n"
        "  --energy          print the energy breakdown\n"
        "  --jobs N          worker threads for verification and\n"
        "                    baseline runs (0 = auto, default 1)\n"
        "  --sim-jobs N      intra-run event workers: channel-\n"
        "                    partitioned simulation (0 = auto,\n"
        "                    default 1; results are bit-identical\n"
        "                    for every value)\n"
        "  --profile-domains FILE  write per-domain self-profiling\n"
        "                    JSON (needs --sim-jobs > 1)\n"
        "  --record FILE     record the observer hook stream into a\n"
        "                    binary commit log (forces the ordering\n"
        "                    oracle on; replay with olight_replay)\n"
        "  --trace FILE      write a CSV packet trace\n"
        "  --trace-json FILE write a Chrome trace_event JSON trace\n"
        "                    (open in Perfetto / chrome://tracing)\n"
        "  --stats-json FILE write metrics + all statistics as JSON\n"
        "  --sample FILE     write an interval time-series CSV\n"
        "  --sample-interval N  sampling period in core cycles\n"
        "                    (default 1000)\n"
        "  --dump-kernel N   disassemble N instrs per channel\n"
        "  --flush           model the pre-kernel coherence flush\n"
        "  --list            list workloads and exit\n";
}

/** Number parsing that survives typos: `--ts x` names the flag and
 *  exits 2 instead of dying on an uncaught std::invalid_argument. */
std::uint64_t
parseNumber(const std::string &flag, const std::string &value)
{
    return cli::parseNumber("olight_cli", flag, value);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "Add";
    OrderingMode mode = OrderingMode::OrderLight;
    std::uint32_t ts = 256, bmf = 16, channels = 16;
    std::uint64_t elements = 1ull << 18;
    bool cpu_host = false, verify = false, gpu_baseline = false;
    bool dump_stats = false, energy = false, flush = false;
    std::size_t dump_kernel = 0;
    unsigned jobs = 1, sim_jobs = 1;
    std::string trace_path, trace_json_path, stats_json_path;
    std::string sample_path, profile_path, record_path;
    std::uint64_t sample_interval_cycles = 1000;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next();
        else if (arg == "--mode")
            mode = cli::parseMode(next());
        else if (arg == "--ts")
            ts = std::uint32_t(parseNumber(arg, next()));
        else if (arg == "--bmf")
            bmf = std::uint32_t(parseNumber(arg, next()));
        else if (arg == "--elements")
            elements = parseNumber(arg, next());
        else if (arg == "--channels")
            channels = std::uint32_t(parseNumber(arg, next()));
        else if (arg == "--cpu-host")
            cpu_host = true;
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--gpu-baseline")
            gpu_baseline = true;
        else if (arg == "--stats")
            dump_stats = true;
        else if (arg == "--energy")
            energy = true;
        else if (arg == "--jobs" || arg == "-j")
            jobs = unsigned(parseNumber(arg, next()));
        else if (arg == "--sim-jobs")
            sim_jobs = cli::parseSimJobs("olight_cli", next());
        else if (arg == "--record")
            record_path = next();
        else if (arg == "--profile-domains")
            profile_path = next();
        else if (arg == "--trace")
            trace_path = next();
        else if (arg == "--trace-json")
            trace_json_path = next();
        else if (arg == "--stats-json")
            stats_json_path = next();
        else if (arg == "--sample")
            sample_path = next();
        else if (arg == "--sample-interval")
            sample_interval_cycles = parseNumber(arg, next());
        else if (arg == "--dump-kernel")
            dump_kernel = std::size_t(parseNumber(arg, next()));
        else if (arg == "--flush")
            flush = true;
        else if (arg == "--list") {
            for (const auto &name : workloadNames()) {
                auto w = makeWorkload(name);
                WorkloadInfo info = w->info();
                std::cout << name << "\t" << info.ratio << "\t"
                          << info.description << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (!findWorkload(workload)) {
        std::cerr << unknownWorkloadMessage(workload) << "\n";
        return 2;
    }

    cli::enforceLimits("olight_cli", elements,
                       std::max<std::uint64_t>(jobs, sim_jobs), 1);

    if (sim_jobs > 1 &&
        (!trace_path.empty() || !trace_json_path.empty() ||
         !sample_path.empty() || flush)) {
        // These features poll or serialize the whole pipe per event;
        // they need the classic single-queue driver.
        std::cerr << "olight_cli: --trace/--sample/--flush require "
                     "the sequential driver; forcing --sim-jobs 1\n";
        sim_jobs = 1;
    }
    if (!profile_path.empty() && sim_jobs <= 1) {
        std::cerr << "olight_cli: --profile-domains needs "
                     "--sim-jobs > 1\n";
        return 2;
    }

    SystemConfig base = cpu_host ? cpuHostBase() : SystemConfig{};
    base.numChannels = channels;
    SystemConfig cfg = configFor(mode, ts, bmf, base);
    // End-to-end check + live invariants; a recorded log carries the
    // oracle's verdict in its footer, so --record forces it on.
    cfg.verifyOracle = verify || !record_path.empty();
    cfg.print(std::cout);

    auto w = makeWorkload(workload);
    w->build(cfg, elements);

    if (!trace_path.empty() && !trace_json_path.empty()) {
        std::cerr << "--trace and --trace-json are exclusive (one "
                     "trace sink per run)\n";
        return 2;
    }

    // Output streams are declared before the System so the
    // TraceWriter can still flush its JSON footer when the System
    // (which owns it) is destroyed.
    auto open_out = [](std::ofstream &file, const std::string &path) {
        file.open(path);
        if (!file) {
            std::cerr << "cannot open output file " << path << "\n";
            std::exit(2);
        }
    };
    std::ofstream trace_file, sample_file, stats_json_file;
    if (!stats_json_path.empty())
        open_out(stats_json_file, stats_json_path);

    ExecPolicy policy;
    policy.simJobs = sim_jobs;
    policy.profileDomains = !profile_path.empty();
    std::unique_ptr<CommitLogWriter> log_writer;
    System sys(cfg, policy);
    if (!record_path.empty()) {
        log_writer = std::make_unique<CommitLogWriter>(record_path,
                                                       cfg, 0);
        sys.enableRecording(*log_writer);
    }
    if (!trace_path.empty()) {
        open_out(trace_file, trace_path);
        sys.enableTrace(trace_file, TraceFormat::Csv);
    } else if (!trace_json_path.empty()) {
        open_out(trace_file, trace_json_path);
        sys.enableTrace(trace_file, TraceFormat::ChromeJson);
    }
    if (!sample_path.empty()) {
        open_out(sample_file, sample_path);
        sys.enableSampling(sample_file,
                           Tick(sample_interval_cycles) * corePeriod);
    }

    if (dump_kernel > 0)
        dumpKernel(std::cout, w->streams(), w->map(), dump_kernel);

    w->initMemory(sys.mem());
    sys.loadPimKernel(w->streams());
    if (flush)
        sys.setCoherenceFlush(w->hostTraffic());

    // With --jobs > 1, the golden-reference execution and the GPU
    // host baseline are independent of the main simulation, so they
    // run on pool workers while sys.run() occupies this thread.
    if (jobs == 0)
        jobs = ThreadPool::defaultThreads();
    ThreadPool pool(jobs > 1 ? jobs - 1 : 1);
    bool overlap = jobs > 1;

    SparseMemory golden;
    bool golden_ready = false;
    auto run_golden = [&] {
        w->initMemory(golden);
        runGolden(cfg, w->map(), w->streams(), golden);
        golden_ready = true;
    };
    double gpu_ms = 0.0;
    auto run_gpu = [&] {
        gpu_ms = gpuBaselineMs(workload, elements, base);
    };
    if (overlap) {
        if (verify)
            pool.submit(run_golden);
        if (gpu_baseline)
            pool.submit(run_gpu);
    }

    RunMetrics m = sys.run();
    if (overlap)
        pool.wait();

    if (log_writer) {
        const ReplayVerdict live = harvestVerdict(*sys.oracle());
        if (!log_writer->finish(live.violations, live.checks,
                                live.reportHash, live.clean)) {
            std::cerr << "olight_cli: failed to write commit log "
                      << record_path << "\n";
            return 2;
        }
        std::cout << "  commit log: " << record_path << " ("
                  << log_writer->records() << " records)\n";
    }

    std::cout << "\n" << workload << " / " << toString(mode) << " / "
              << tsLabel(cfg) << " / BMF " << bmf << ":\n  ";
    m.print(std::cout);
    std::cout << "\n";
    if (flush)
        std::cout << "  coherence flush: "
                  << ticksToMs(sys.flushDoneTick()) << " ms\n";

    if (verify) {
        if (!golden_ready)
            run_golden();
        std::string why;
        bool ok = true;
        for (const auto &arr : w->arrays()) {
            if (!compareArray(sys.mem(), golden, arr, why)) {
                ok = false;
                break;
            }
        }
        if (ok && !w->check(sys.mem(), why))
            ok = false;
        std::cout << "  verification: "
                  << (ok ? "bit-exact" : ("FAILED: " + why)) << "\n";
        if (const OrderingOracle *oracle = sys.oracle()) {
            std::cout << "  ordering oracle: "
                      << oracle->checksPerformed() << " checks, "
                      << oracle->violationCount()
                      << " violation(s)\n";
            if (!oracle->clean()) {
                oracle->report(std::cout);
                ok = false;
            }
        }
        if (!ok)
            return 1;
    }

    if (gpu_baseline) {
        if (!overlap)
            run_gpu();
        std::cout << "  GPU host execution: " << gpu_ms
                  << " ms (PIM speedup "
                  << gpu_ms / m.execMs << "x)\n";
    }

    if (energy) {
        EnergyBreakdown e = computeEnergy(sys.stats(), cfg);
        std::cout << "  ";
        e.print(std::cout);
        std::cout << "\n";
    }

    if (dump_stats) {
        std::cout << "\n";
        sys.stats().dump(std::cout);
    }

    if (!profile_path.empty()) {
        std::ofstream profile_file;
        open_out(profile_file, profile_path);
        sys.writeDomainProfile(profile_file);
        profile_file << "\n";
    }

    if (stats_json_file.is_open()) {
        WorkloadInfo info = w->info();
        stats_json_file << "{\"config_fingerprint\":\""
                        << fingerprintHex(fingerprint(cfg))
                        << "\",\"workload\":{\"name\":\""
                        << info.name << "\",\"family\":\""
                        << toString(workloadFamily(workload))
                        << "\",\"ratio\":\"" << info.ratio
                        << "\",\"multi_structure\":"
                        << (info.multiStructure ? "true" : "false")
                        << "},\"metrics\":";
        m.writeJson(stats_json_file);
        stats_json_file << ",\"stats\":";
        sys.stats().dumpJson(stats_json_file);
        stats_json_file << "}\n";
    }
    return 0;
}

/**
 * @file
 * `olight_client` — thin CLI for the olight_served daemon.
 *
 * Submits newline-delimited JSON requests and prints one reply line
 * per request to stdout. Requests come from repeated --request
 * flags, or from stdin (one per line) when none are given.
 *
 *   olight_client --socket /tmp/olight.sock \
 *       --request '{"cmd":"run","workload":"Add","elements":16384}'
 *   echo '{"cmd":"stats"}' | olight_client --tcp 7077
 *
 * Exit status: 0 when every request got a reply (including error
 * replies — inspect "ok" yourself), 1 on transport failure,
 * 2 on usage errors.
 */

#include <iostream>
#include <string>
#include <vector>

#include "serve/net.hh"

using namespace olight;

namespace
{

void
usage()
{
    std::cout <<
        "usage: olight_client (--socket PATH | --tcp PORT "
        "[--host IP]) [--request JSON]...\n"
        "Requests come from --request flags (repeatable) or stdin\n"
        "lines; each reply prints on its own stdout line.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unix_path, host = "127.0.0.1";
    std::uint16_t port = 0;
    bool have_tcp = false;
    std::vector<std::string> requests;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            unix_path = next();
        } else if (arg == "--tcp") {
            port = std::uint16_t(std::stoul(next()));
            have_tcp = true;
        } else if (arg == "--host") {
            host = next();
        } else if (arg == "--request") {
            requests.push_back(next());
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }
    if (unix_path.empty() && !have_tcp) {
        std::cerr << "olight_client: need --socket PATH or "
                     "--tcp PORT\n";
        return 2;
    }

    if (requests.empty()) {
        std::string line;
        while (std::getline(std::cin, line))
            if (!line.empty())
                requests.push_back(line);
    }
    if (requests.empty())
        return 0;

    std::string err;
    serve::Fd fd = unix_path.empty()
                       ? serve::connectTcp(host, port, err)
                       : serve::connectUnix(unix_path, err);
    if (!fd.valid()) {
        std::cerr << "olight_client: " << err << "\n";
        return 1;
    }

    std::string carry;
    for (const std::string &request : requests) {
        if (!serve::writeAll(fd.get(), request + "\n")) {
            std::cerr << "olight_client: send failed\n";
            return 1;
        }
        std::string reply;
        serve::ReadStatus st =
            serve::readLine(fd.get(), reply, carry);
        if (st != serve::ReadStatus::Line) {
            std::cerr << "olight_client: connection closed before "
                         "a reply\n";
            return 1;
        }
        std::cout << reply << "\n";
    }
    return 0;
}

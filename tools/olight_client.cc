/**
 * @file
 * `olight_client` — thin CLI for the olight_served daemon and the
 * olight_router front tier (same protocol, same client).
 *
 * Submits newline-delimited JSON requests and prints one reply line
 * per request to stdout. Requests come from repeated --request
 * flags, or from stdin (one per line) when none are given.
 *
 *   olight_client --socket /tmp/olight.sock \
 *       --request '{"cmd":"run","workload":"Add","elements":16384}'
 *   echo '{"cmd":"stats"}' | olight_client --tcp 7077
 *
 * Load-shedding cooperation: a `busy` reply carries retry_after_ms,
 * and the client waits that long and resends, up to --retries times
 * per request, before printing the busy reply as the final answer.
 *
 * Exit status: 0 when every request got a reply (including error
 * replies — inspect "ok" yourself), 1 on transport failure or
 * timeout, 2 on usage errors.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/net.hh"

using namespace olight;

namespace
{

void
usage()
{
    std::cout <<
        "usage: olight_client (--socket PATH | --tcp PORT "
        "[--host IP]) [--request JSON]...\n"
        "Requests come from --request flags (repeatable) or stdin\n"
        "lines; each reply prints on its own stdout line.\n"
        "  --timeout-ms N  per-reply wait and per-send bound\n"
        "                  (default 120000, 0 = unlimited)\n"
        "  --retries N     resends per request on `busy` replies,\n"
        "                  each after the reply's retry_after_ms\n"
        "                  (default 3, 0 = print busy immediately)\n";
}

bool
isBusyReply(const std::string &reply)
{
    return reply.compare(0, 11, "{\"ok\":false") == 0 &&
           reply.find("\"code\":\"busy\"") != std::string::npos;
}

/** retry_after_ms hint from a busy reply (fallback 100). */
int
retryAfterHint(const std::string &reply)
{
    const std::size_t p = reply.find("\"retry_after_ms\":");
    if (p == std::string::npos)
        return 100;
    const int ms = std::atoi(reply.c_str() + p + 17);
    return ms > 0 ? ms : 100;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string unix_path, host = "127.0.0.1";
    std::uint16_t port = 0;
    bool have_tcp = false;
    int timeout_ms = 120000;
    int retries = 3;
    std::vector<std::string> requests;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            unix_path = next();
        } else if (arg == "--tcp") {
            port = std::uint16_t(std::stoul(next()));
            have_tcp = true;
        } else if (arg == "--host") {
            host = next();
        } else if (arg == "--timeout-ms") {
            timeout_ms = std::atoi(next().c_str());
        } else if (arg == "--retries") {
            retries = std::atoi(next().c_str());
        } else if (arg == "--request") {
            requests.push_back(next());
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }
    if (unix_path.empty() && !have_tcp) {
        std::cerr << "olight_client: need --socket PATH or "
                     "--tcp PORT\n";
        return 2;
    }

    if (requests.empty()) {
        std::string line;
        while (std::getline(std::cin, line))
            if (!line.empty())
                requests.push_back(line);
    }
    if (requests.empty())
        return 0;

    std::string err;
    serve::Fd fd = unix_path.empty()
                       ? serve::connectTcp(host, port, err)
                       : serve::connectUnix(unix_path, err);
    if (!fd.valid()) {
        std::cerr << "olight_client: " << err << "\n";
        return 1;
    }

    std::string carry;
    for (const std::string &request : requests) {
        std::string reply;
        for (int attempt = 0;; ++attempt) {
            if (!serve::writeAll(fd.get(), request + "\n",
                                 timeout_ms)) {
                std::cerr << "olight_client: send failed\n";
                return 1;
            }
            serve::ReadStatus st = serve::readLine(
                fd.get(), reply, carry, nullptr, /*pollMs=*/100,
                /*maxLine=*/1 << 20,
                /*stallTimeoutMs=*/timeout_ms,
                /*idleTimeoutMs=*/timeout_ms);
            if (st == serve::ReadStatus::TimedOut) {
                std::cerr << "olight_client: no reply within "
                          << timeout_ms << " ms\n";
                return 1;
            }
            if (st != serve::ReadStatus::Line) {
                std::cerr << "olight_client: connection closed "
                             "before a reply\n";
                return 1;
            }
            if (!isBusyReply(reply) || attempt >= retries)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                retryAfterHint(reply)));
        }
        std::cout << reply << "\n";
    }
    return 0;
}

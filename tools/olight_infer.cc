/**
 * @file
 * Offline ordering inference over a commit log.
 *
 * Two analyses per log (see verify/infer.hh):
 *
 *  - Reconstruct the minimal happens-before relation from the SM-side
 *    program order and check every edge against the MC commit stream;
 *    the verdict must agree with a full oracle replay of the same log.
 *  - Re-check the log under N perturbed per-channel MC schedules —
 *    seeded shuffles of commit slots within a lookahead window — to
 *    scale a litmus sensitivity sweep from tens of simulated seeds to
 *    thousands of plausible schedules without re-simulating.
 *
 * Exit status: 0 = inference consistent with the replayed oracle,
 * 1 = inconsistent, 2 = unreadable log or bad usage.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_common.hh"
#include "core/config.hh"
#include "verify/infer.hh"

using namespace olight;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: olight_infer [options] LOG\n"
          "  --perturb N   re-check N perturbed schedules (default "
          "0: only\n"
          "                infer + check the recorded schedule)\n"
          "  --seed S      perturbation seed (default 1)\n"
          "  --window T    shuffle window in ticks (default 1000)\n"
          "  --json FILE   also write the summary as JSON\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, jsonPath;
    std::uint64_t perturb = 0, seed = 1, window = 1000;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "olight_infer: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--perturb")
            perturb = cli::parseNumber("olight_infer", arg, next());
        else if (arg == "--seed")
            seed = cli::parseNumber("olight_infer", arg, next());
        else if (arg == "--window")
            window = cli::parseNumber("olight_infer", arg, next());
        else if (arg == "--json")
            jsonPath = next();
        else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "olight_infer: unknown flag: " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "olight_infer: one log at a time\n";
            return 2;
        }
    }
    if (path.empty()) {
        usage(std::cerr);
        return 2;
    }

    LogData log;
    std::string error;
    LogReadStatus status = readCommitLog(path, log, &error);
    if (status != LogReadStatus::Ok) {
        std::cerr << "olight_infer: " << path << ": "
                  << toString(status) << ": " << error << "\n";
        return 2;
    }

    std::cout << path << ": " << log.footer.records << " records, "
              << log.header.numChannels << " channels x "
              << log.header.numMemGroups << " groups, mode "
              << toString(OrderingMode(log.header.orderingMode))
              << "\n";

    const InferredOrder order = inferHappensBefore(log);
    std::cout << "happens-before: " << order.edges.size()
              << " edges (" << order.epochEdges << " epoch, "
              << order.crossGroupEdges << " cross-group, "
              << order.rawEdges << " ts-raw) over "
              << order.orderingPoints << " ordering points, "
              << order.commits << " commits\n"
              << "recorded schedule: " << order.violatedEdges
              << " violated edge(s)\n";

    const ReplayVerdict replay = replayLog(log);
    const bool consistent = order.consistentWith(replay);
    std::cout << "oracle replay:     " << replay.violations
              << " violation(s) -> inference "
              << (consistent ? "consistent" : "INCONSISTENT")
              << "\n";

    PerturbSummary sum;
    double perturbSeconds = 0.0;
    if (perturb > 0) {
        auto t0 = std::chrono::steady_clock::now();
        sum = perturbAndCheck(log, perturb, seed, window);
        perturbSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        std::cout << "perturbed schedules: " << sum.schedules
                  << " checked in " << perturbSeconds << " s ("
                  << sum.violating << " violating, " << sum.clean
                  << " clean, " << sum.totalViolations
                  << " violated edges, " << sum.shuffledCommits
                  << " commits moved)\n"
                  << "oracle cross-check:  " << sum.validated
                  << " schedule(s), " << sum.validationMismatches
                  << " mismatch(es)\n";
        if (sum.validationMismatches)
            return 1;
    }

    if (!jsonPath.empty()) {
        std::ofstream js(jsonPath);
        if (!js) {
            std::cerr << "olight_infer: cannot open " << jsonPath
                      << "\n";
            return 2;
        }
        js << "{\"log\":\"" << path << "\",\"records\":"
           << log.footer.records << ",\"edges\":"
           << order.edges.size() << ",\"epoch_edges\":"
           << order.epochEdges << ",\"cross_group_edges\":"
           << order.crossGroupEdges << ",\"ts_raw_edges\":"
           << order.rawEdges << ",\"violated_edges\":"
           << order.violatedEdges << ",\"ordering_points\":"
           << order.orderingPoints << ",\"commits\":" << order.commits
           << ",\"oracle_violations\":" << replay.violations
           << ",\"consistent\":" << (consistent ? "true" : "false")
           << ",\"perturbed\":{\"schedules\":" << sum.schedules
           << ",\"violating\":" << sum.violating << ",\"clean\":"
           << sum.clean << ",\"violated_edges\":"
           << sum.totalViolations << ",\"commits_moved\":"
           << sum.shuffledCommits << ",\"oracle_checked\":"
           << sum.validated << ",\"oracle_mismatches\":"
           << sum.validationMismatches << ",\"seconds\":"
           << perturbSeconds << "}}\n";
    }
    return consistent ? 0 : 1;
}

/**
 * @file
 * Litmus-test runner for the memory-ordering verification layer.
 *
 * Runs the declarative litmus table (verify/litmus.hh) under one or
 * all ordering modes across a sweep of schedule seeds, with the
 * OrderingOracle attached. The exit status encodes the harness's two
 * meta-assertions:
 *
 *  - sensitivity: under --mode none every pattern must violate on at
 *    least one seed (an oracle that cannot fail proves nothing);
 *  - soundness: under the enforcing modes (fence, orderlight,
 *    louvre) no pattern may violate on any seed.
 *
 * Exit 0 when the selected assertion holds, 1 when it does not,
 * 2 on bad usage.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli_common.hh"
#include "verify/litmus.hh"

namespace
{

using namespace olight;

void
usage(std::ostream &os)
{
    os << "usage: olight_litmus [options]\n"
          "  --pattern NAME   run one pattern (default: all)\n"
          "  --mode MODE      " << modeNamesJoined(false, '|')
       << " (default: all of them)\n"
          "  --seeds N        schedule seeds per pattern "
          "(default 32)\n"
          "  --seed N         run exactly one schedule seed\n"
          "  --sim-jobs N     intra-run event workers (0 = auto, "
          "default 1;\n"
          "                   the verdict is identical for every "
          "value)\n"
          "  --record PATH    record the run's hook stream into a "
          "binary\n"
          "                   commit log (needs --pattern, --mode "
          "and --seed;\n"
          "                   replay with olight_replay)\n"
          "  --list           print the litmus table and exit\n"
          "  --verbose        print every per-seed result and the "
          "first violation report\n";
}

[[noreturn]] void
badFlag(const std::string &flag, const std::string &why)
{
    std::cerr << "olight_litmus: " << why << ": " << flag << "\n";
    usage(std::cerr);
    std::exit(2);
}

std::uint64_t
parseCount(const std::string &flag, const std::string &value)
{
    std::uint64_t out = 0;
    if (!cli::tryParseNumber(value, out))
        badFlag(flag + " " + value, "not a number");
    return out;
}

using cli::modeName;

} // namespace

int
main(int argc, char **argv)
{
    std::string pattern;
    // Default sweep: the central registry's litmus-capable set —
    // None for sensitivity plus every enforcing backend.
    std::vector<OrderingMode> modes = litmusModes();
    std::uint64_t seeds = 32;
    std::uint64_t firstSeed = 1;
    bool singleSeed = false;
    bool modeChosen = false;
    unsigned simJobs = 1;
    std::string recordPath;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                badFlag(flag, "missing value for");
            return argv[++i];
        };
        if (arg == "--pattern") {
            pattern = next("--pattern");
            if (!findLitmus(pattern))
                badFlag(pattern, "unknown pattern");
        } else if (arg == "--mode") {
            OrderingMode m;
            std::string v = next("--mode");
            // The litmus harness has no SeqNum patterns, so that
            // mode stays a bad flag here (registry: litmusCapable).
            if (!cli::tryParseMode(v, false, m))
                badFlag(v, "unknown mode");
            modes = {m};
            modeChosen = true;
        } else if (arg == "--seeds") {
            seeds = parseCount("--seeds", next("--seeds"));
            if (seeds == 0)
                badFlag("--seeds 0", "need at least one seed for");
        } else if (arg == "--seed") {
            firstSeed = parseCount("--seed", next("--seed"));
            singleSeed = true;
        } else if (arg == "--sim-jobs") {
            simJobs =
                cli::parseSimJobs("olight_litmus", next("--sim-jobs"));
        } else if (arg == "--record") {
            recordPath = next("--record");
        } else if (arg == "--list") {
            for (const LitmusSpec &spec : litmusTable())
                std::cout << spec.name << "\n    "
                          << spec.description << "\n";
            return 0;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            badFlag(arg, "unknown flag");
        }
    }

    if (!recordPath.empty() &&
        (pattern.empty() || !modeChosen || !singleSeed))
        badFlag("--record",
                "--pattern, --mode and --seed are required for");

    const std::uint64_t lastSeed =
        singleSeed ? firstSeed : firstSeed + seeds - 1;
    bool failed = false;
    for (OrderingMode mode : modes) {
        for (const LitmusSpec &spec : litmusTable()) {
            if (!pattern.empty() && pattern != spec.name)
                continue;
            std::uint64_t violating_seeds = 0;
            std::uint64_t total_violations = 0;
            std::string first_report;
            for (std::uint64_t s = firstSeed; s <= lastSeed; ++s) {
                LitmusResult res = runLitmus(spec.name, mode, s,
                                             simJobs, recordPath);
                if (res.violations > 0) {
                    ++violating_seeds;
                    total_violations += res.violations;
                    if (first_report.empty())
                        first_report = res.report;
                }
                if (verbose)
                    std::cout << "  " << modeName(mode) << "/"
                              << spec.name << " seed " << s << ": "
                              << res.violations << " violation(s), "
                              << res.checks << " checks\n";
            }

            // Sensitivity for None, soundness for the real modes.
            bool ok = mode == OrderingMode::None
                          ? violating_seeds > 0
                          : violating_seeds == 0;
            std::cout << modeName(mode) << "/" << spec.name << ": "
                      << violating_seeds << "/"
                      << (singleSeed ? 1 : seeds)
                      << " seeds violating (" << total_violations
                      << " total) -> "
                      << (ok ? "ok"
                             : mode == OrderingMode::None
                                   ? "FAIL (oracle not sensitive)"
                                   : "FAIL (ordering violated)")
                      << "\n";
            if (!ok)
                failed = true;
            if ((verbose || !ok) && !first_report.empty())
                std::cout << first_report;
        }
    }
    return failed ? 1 : 0;
}

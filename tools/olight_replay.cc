/**
 * @file
 * Deterministic commit-log replayer.
 *
 * Reads a binary commit log (recorded with olight_cli --record,
 * olight_litmus --record, or RunOptions::recordPath), re-drives a
 * fresh OrderingOracle with the captured hook stream — no timing
 * model in the loop — and diffs the replayed verdict against the
 * live verdict the footer recorded. The two must agree byte for
 * byte: same violation count, same check count, same report text
 * (compared by FNV-1a hash).
 *
 * Exit status: 0 = verdict reproduced, 1 = replay diverged from the
 * footer, 2 = unreadable / corrupt log or bad usage. Malformed input
 * always produces a one-line diagnostic, never a crash.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hh"
#include "sim/commit_log.hh"
#include "verify/log_events.hh"

using namespace olight;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: olight_replay [options] LOG\n"
          "  --report   print the replayed oracle report (when the\n"
          "             run had violations)\n"
          "  --quiet    only the verdict line\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool showReport = false;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--report") {
            showReport = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "olight_replay: unknown flag: " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "olight_replay: one log at a time\n";
            return 2;
        }
    }
    if (path.empty()) {
        usage(std::cerr);
        return 2;
    }

    LogData log;
    std::string error;
    LogReadStatus status = readCommitLog(path, log, &error);
    if (status != LogReadStatus::Ok) {
        std::cerr << "olight_replay: " << path << ": "
                  << toString(status) << ": " << error << "\n";
        return 2;
    }

    if (!quiet) {
        std::cout << path << ": " << log.footer.records
                  << " records, " << log.header.numChannels
                  << " channels x " << log.header.numMemGroups
                  << " groups, mode "
                  << toString(OrderingMode(log.header.orderingMode))
                  << ", config "
                  << fingerprintHex(log.header.configFingerprint);
        if (log.header.seed)
            std::cout << ", seed " << log.header.seed;
        std::cout << "\n";
        std::cout << "live verdict:   " << log.footer.violations
                  << " violation(s), " << log.footer.checks
                  << " checks, "
                  << (log.footer.clean ? "clean" : "VIOLATED")
                  << "\n";
    }

    const ReplayVerdict replay = replayLog(log);
    const bool match = replay.matchesFooter(log.footer);
    std::cout << "replay verdict: " << replay.violations
              << " violation(s), " << replay.checks << " checks, "
              << (replay.clean ? "clean" : "VIOLATED") << " -> "
              << (match ? "matches the live run byte-identically"
                        : "DIVERGED from the live run")
              << "\n";
    if (!match) {
        std::cout << "  live:   violations=" << log.footer.violations
                  << " checks=" << log.footer.checks
                  << " reportHash="
                  << fingerprintHex(log.footer.reportHash) << "\n"
                  << "  replay: violations=" << replay.violations
                  << " checks=" << replay.checks << " reportHash="
                  << fingerprintHex(replay.reportHash) << "\n";
    }
    if (showReport && !replay.report.empty())
        std::cout << replay.report;
    return match ? 0 : 1;
}

/**
 * @file
 * `olight_router` — the fleet's front tier.
 *
 * Listens on the same NDJSON protocol as olight_served and shards
 * work across N backend daemons by content fingerprint (rendezvous
 * hashing): runs are forwarded whole, sweeps are fanned out point
 * by point, deduped, and reassembled byte-identical to a
 * single-daemon reply. Backends are health-checked and failed over
 * automatically; SIGTERM/SIGINT drain the router gracefully
 * (backends keep running — drain them individually).
 *
 *   olight_router --socket /tmp/olr.sock \
 *       --backend /tmp/be0.sock --backend /tmp/be1.sock \
 *       --backend 127.0.0.1:7077
 *
 * Wire protocol: docs/INTERNALS.md §11; fleet architecture: §16.
 */

#include <csignal>
#include <iostream>
#include <string>

#include "cli_common.hh"
#include "serve/router.hh"

using namespace olight;

namespace
{

serve::Router *g_router = nullptr;

/** SIGTERM/SIGINT → graceful drain (async-signal-safe). */
void
onSignal(int)
{
    if (g_router)
        g_router->requestDrain();
}

void
usage()
{
    std::cout <<
        "usage: olight_router [options] --backend ADDR...\n"
        "  --socket PATH   listen on a Unix-domain socket\n"
        "  --tcp PORT      listen on loopback TCP (0 = ephemeral;\n"
        "                  the bound port is printed on startup)\n"
        "  --backend ADDR  a backend daemon (repeatable): either a\n"
        "                  Unix socket path or HOST:PORT\n"
        "  --health-ms N   backend probe period (default 1000,\n"
        "                  0 disables probing)\n"
        "  --backoff-ms N  quarantine after a backend failure\n"
        "                  before it is tried again (default 2000)\n"
        "  --io-timeout-ms N     client session I/O timeout\n"
        "                  (default 30000, 0 = unlimited)\n"
        "  --backend-timeout-ms N  per-forward reply bound; covers\n"
        "                  a whole simulation (default 120000)\n"
        "  --fanout N      concurrent sub-requests per sweep\n"
        "                  (default 2x the backend count)\n"
        "  --verbose       log forwards and health transitions\n"
        "Drain with SIGTERM (or a {\"cmd\":\"drain\"} request).\n";
}

/** "HOST:PORT" (a colon and all-digit port) is TCP; anything else
 *  is a Unix socket path. */
serve::BackendSpec
parseBackend(const std::string &addr)
{
    serve::BackendSpec spec;
    const std::size_t colon = addr.rfind(':');
    if (colon != std::string::npos && colon + 1 < addr.size()) {
        bool digits = true;
        for (std::size_t i = colon + 1; i < addr.size(); ++i)
            digits = digits && addr[i] >= '0' && addr[i] <= '9';
        if (digits) {
            spec.host = addr.substr(0, colon);
            spec.port = std::uint16_t(
                std::stoul(addr.substr(colon + 1)));
            return spec;
        }
    }
    spec.unixPath = addr;
    return spec;
}

std::uint64_t
parseNumber(const std::string &flag, const std::string &value)
{
    return cli::parseNumber("olight_router", flag, value);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::RouterOptions opts;
    bool have_endpoint = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opts.unixPath = next();
            have_endpoint = true;
        } else if (arg == "--tcp") {
            opts.tcpPort = std::uint16_t(parseNumber(arg, next()));
            have_endpoint = true;
        } else if (arg == "--backend") {
            opts.backends.push_back(parseBackend(next()));
        } else if (arg == "--health-ms") {
            opts.healthIntervalMs = int(parseNumber(arg, next()));
        } else if (arg == "--backoff-ms") {
            opts.backoffMs = int(parseNumber(arg, next()));
        } else if (arg == "--io-timeout-ms") {
            opts.ioTimeoutMs = int(parseNumber(arg, next()));
        } else if (arg == "--backend-timeout-ms") {
            opts.backendTimeoutMs = int(parseNumber(arg, next()));
        } else if (arg == "--fanout") {
            opts.fanoutJobs = unsigned(parseNumber(arg, next()));
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (!have_endpoint) {
        std::cerr << "olight_router: need --socket PATH or "
                     "--tcp PORT\n";
        return 2;
    }

    serve::Router router(opts);
    std::string err;
    if (!router.start(err)) {
        std::cerr << "olight_router: " << err << "\n";
        return opts.backends.empty() ? 2 : 1;
    }

    g_router = &router;
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    if (!opts.unixPath.empty())
        std::cerr << "olight_router: listening on "
                  << opts.unixPath;
    else
        std::cerr << "olight_router: listening on 127.0.0.1:"
                  << router.tcpPort();
    std::cerr << " (" << opts.backends.size() << " backends)\n";

    router.join(); // returns once drained

    serve::RouterSnapshot s = router.snapshot();
    std::cerr << "olight_router: drained after " << s.requests
              << " requests (" << s.runsForwarded
              << " runs forwarded, " << s.sweepsFanned
              << " sweeps fanned, " << s.failovers
              << " failovers)\n";
    return 0;
}

/**
 * @file
 * `olight_served` — the long-running simulation service.
 *
 * Accepts newline-delimited JSON requests (run / sweep / stats /
 * drain / ping) over a Unix-domain or loopback-TCP socket, executes
 * them on a bounded worker pool, and serves repeated grid points
 * from a content-addressed result cache (byte-identical replies
 * without re-simulating). SIGTERM/SIGINT drain gracefully: every
 * in-flight request completes and flushes its reply before exit.
 *
 *   olight_served --socket /tmp/olight.sock --jobs 4
 *   olight_served --tcp 7077 --queue 16 --cache 4096
 *
 * Wire protocol: docs/INTERNALS.md §11. Companion client:
 * olight_client.
 */

#include <csignal>
#include <iostream>
#include <string>

#include "cli_common.hh"
#include "core/limits.hh"
#include "serve/server.hh"

using namespace olight;

namespace
{

serve::Server *g_server = nullptr;

/** SIGTERM/SIGINT → graceful drain (async-signal-safe: the handler
 *  only flips an atomic and writes one byte to a self-pipe). */
void
onSignal(int)
{
    if (g_server)
        g_server->requestDrain();
}

void
usage()
{
    std::cout <<
        "usage: olight_served [options]\n"
        "  --socket PATH   listen on a Unix-domain socket\n"
        "  --tcp PORT      listen on loopback TCP (0 = ephemeral;\n"
        "                  the bound port is printed on startup)\n"
        "  --jobs N        simulation workers (0 = auto, default)\n"
        "  --queue N       admission bound: max queued+running\n"
        "                  requests before `busy` replies\n"
        "                  (default 2x jobs)\n"
        "  --share N       max admission slots one client may hold\n"
        "                  (default half the queue, rounded up)\n"
        "  --cache N       result-cache entries (default 1024,\n"
        "                  0 disables caching)\n"
        "  --cas DIR       on-disk content-addressed store: cache\n"
        "                  hits survive restarts and may be shared\n"
        "                  between daemons (default: none)\n"
        "  --cas-max-bytes N  disk-store size cap, LRU-evicted\n"
        "                  (default unlimited)\n"
        "  --retry-ms N    retry_after_ms hint in busy replies\n"
        "                  (default 100)\n"
        "  --io-timeout-ms N  session I/O timeout: mid-request read\n"
        "                  stalls and reply writes (default 30000,\n"
        "                  0 = unlimited)\n"
        "  --verbose       log one line per served request\n"
        "Drain with SIGTERM (or a {\"cmd\":\"drain\"} request):\n"
        "in-flight requests complete, then the daemon exits 0.\n";
}

std::uint64_t
parseNumber(const std::string &flag, const std::string &value)
{
    return cli::parseNumber("olight_served", flag, value);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions opts;
    bool have_endpoint = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            opts.unixPath = next();
            have_endpoint = true;
        } else if (arg == "--tcp") {
            opts.tcpPort =
                std::uint16_t(parseNumber(arg, next()));
            have_endpoint = true;
        } else if (arg == "--jobs" || arg == "-j") {
            opts.jobs = unsigned(parseNumber(arg, next()));
        } else if (arg == "--queue") {
            opts.admitLimit = std::size_t(parseNumber(arg, next()));
        } else if (arg == "--share") {
            opts.clientShare =
                std::size_t(parseNumber(arg, next()));
        } else if (arg == "--cache") {
            opts.cacheEntries =
                std::size_t(parseNumber(arg, next()));
        } else if (arg == "--cas") {
            opts.casRoot = next();
        } else if (arg == "--cas-max-bytes") {
            opts.casMaxBytes = parseNumber(arg, next());
        } else if (arg == "--retry-ms") {
            opts.retryAfterMs = int(parseNumber(arg, next()));
        } else if (arg == "--io-timeout-ms") {
            opts.ioTimeoutMs = int(parseNumber(arg, next()));
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (!have_endpoint) {
        std::cerr << "olight_served: need --socket PATH or "
                     "--tcp PORT\n";
        return 2;
    }
    if (opts.jobs > limits::kMaxJobs) {
        std::cerr << "olight_served: --jobs " << opts.jobs
                  << " exceeds limit " << limits::kMaxJobs << "\n";
        return 2;
    }

    serve::Server server(opts);
    std::string err;
    if (!server.start(err)) {
        std::cerr << "olight_served: " << err << "\n";
        return 1;
    }

    g_server = &server;
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    if (!opts.unixPath.empty())
        std::cerr << "olight_served: listening on "
                  << opts.unixPath;
    else
        std::cerr << "olight_served: listening on 127.0.0.1:"
                  << server.tcpPort();
    std::cerr << " (" << server.jobs() << " workers, admit "
              << server.admitLimit() << ", share "
              << server.clientShare() << ")\n";
    if (!opts.casRoot.empty() && !server.snapshot().diskEnabled)
        std::cerr << "olight_served: warning: --cas " << opts.casRoot
                  << " unusable; disk tier disabled\n";

    server.join(); // returns once drained

    serve::ServeSnapshot s = server.snapshot();
    std::cerr << "olight_served: drained after " << s.requests
              << " requests (" << s.cache.hits << " cache hits, "
              << s.busyRejected << " busy-rejected)\n";
    return 0;
}

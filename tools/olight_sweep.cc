/**
 * @file
 * Grid-sweep driver: runs (workloads x modes x TS x BMF) and emits
 * CSV — the raw data behind any of the paper's figures, ready for
 * external plotting.
 *
 *   olight_sweep --workloads Add,Scale --modes fence,orderlight \
 *                --ts 128,256,512,1024 --bmf 16 --out sweep.csv
 *
 * Grid points are independent simulations, so the sweep runs on a
 * worker pool (--jobs N, default one per hardware thread); the CSV
 * is byte-identical for every worker count.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "cli_common.hh"
#include "core/sweep.hh"
#include "sim/thread_pool.hh"
#include "workloads/registry.hh"

using namespace olight;
using olight::cli::splitCsv;

namespace
{

/** Number parsing that survives typos: `--ts x` names the flag and
 *  exits 2 instead of dying on an uncaught std::invalid_argument. */
std::uint64_t
parseNumber(const std::string &flag, const std::string &value)
{
    return cli::parseNumber("olight_sweep", flag, value);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepSpec spec;
    spec.jobs = 0; // one worker per hardware thread
    std::string out_path, json_path;
    std::vector<WorkloadFamily> families;
    bool workloads_set = false;
    bool timing = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workloads") {
            std::string v = next();
            spec.workloads =
                v == "all" ? workloadNames() : splitCsv(v);
            workloads_set = true;
        } else if (arg == "--family") {
            for (const auto &f : splitCsv(next()))
                families.push_back(cli::parseFamily(f));
        } else if (arg == "--modes") {
            spec.modes.clear();
            for (const auto &m : splitCsv(next()))
                spec.modes.push_back(cli::parseMode(m));
        } else if (arg == "--ts") {
            spec.tsSizes.clear();
            for (const auto &t : splitCsv(next()))
                spec.tsSizes.push_back(
                    std::uint32_t(parseNumber(arg, t)));
        } else if (arg == "--bmf") {
            spec.bmfs.clear();
            for (const auto &b : splitCsv(next()))
                spec.bmfs.push_back(
                    std::uint32_t(parseNumber(arg, b)));
        } else if (arg == "--elements") {
            spec.elements = parseNumber(arg, next());
        } else if (arg == "--verify") {
            spec.verify = true;
        } else if (arg == "--gpu-baseline") {
            spec.gpuBaseline = true;
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--stats-json") {
            json_path = next();
        } else if (arg == "--jobs" || arg == "-j") {
            spec.jobs = unsigned(parseNumber(arg, next()));
        } else if (arg == "--sim-jobs") {
            spec.simJobs = unsigned(parseNumber(arg, next()));
        } else if (arg == "--timing") {
            timing = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: olight_sweep [--workloads a,b|all] "
                   "[--modes " << modeNamesJoined(true, ',')
                << "]\n"
                   "  [--family stream,app,txn,bitwise (select or "
                   "filter workloads)]\n"
                   "  [--ts 128,256,...] [--bmf 4,8,16] "
                   "[--elements N] [--verify]\n"
                   "  [--gpu-baseline] [--out FILE] "
                   "[--stats-json FILE]\n"
                   "  [--jobs N (0 = auto)] [--sim-jobs N "
                   "(0 = auto, intra-run workers)] [--timing]\n";
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return 2;
        }
    }

    // Resolve --family: with no explicit --workloads it selects the
    // named families' workloads; otherwise it filters the given
    // list. Either way every name must be registered.
    if (!families.empty() && !workloads_set) {
        spec.workloads.clear();
        for (WorkloadFamily family : families)
            for (const auto &name : workloadNames(family))
                spec.workloads.push_back(name);
    }
    for (const auto &name : spec.workloads) {
        if (!findWorkload(name)) {
            std::cerr << unknownWorkloadMessage(name) << "\n";
            return 2;
        }
    }
    if (!families.empty() && workloads_set) {
        std::vector<std::string> kept;
        for (const auto &name : spec.workloads) {
            WorkloadFamily family = workloadFamily(name);
            if (std::find(families.begin(), families.end(),
                          family) != families.end())
                kept.push_back(name);
        }
        spec.workloads = std::move(kept);
    }
    if (spec.workloads.empty()) {
        std::cerr << "olight_sweep: no workloads selected\n";
        return 2;
    }

    cli::enforceLimits("olight_sweep", spec.elements,
                       std::max<std::uint64_t>(spec.jobs,
                                               spec.simJobs),
                       spec.points());
    if (spec.simJobs == 0)
        spec.simJobs = ThreadPool::defaultThreads();

    std::cerr << "sweeping " << spec.points() << " points ("
              << (spec.jobs ? spec.jobs
                            : ThreadPool::defaultThreads())
              << " workers)...\n";
    // Progress sink owned by this call site (see SweepProgress):
    // one whole line per completed point on stderr, as always.
    auto rows = runSweep(spec, [](const SweepRow &row) {
        std::cerr << progressLine(row) << "\n";
    });

    if (out_path.empty()) {
        writeCsv(std::cout, rows, timing);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "cannot open " << out_path << "\n";
            return 2;
        }
        writeCsv(out, rows, timing);
        std::cerr << "wrote " << rows.size() << " rows to "
                  << out_path << "\n";
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot open " << json_path << "\n";
            return 2;
        }
        writeJsonRows(out, rows, timing);
        std::cerr << "wrote " << rows.size() << " rows to "
                  << json_path << "\n";
    }

    if (spec.verify) {
        for (const auto &row : rows) {
            if (row.verified && !row.correct) {
                std::cerr << "VERIFICATION FAILED at "
                          << row.workload << "/"
                          << toString(row.mode) << "\n";
                return 1;
            }
        }
    }
    return 0;
}
